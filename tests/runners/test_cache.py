"""ResultCache: round-trips, key sensitivity, corruption tolerance."""

import json

import numpy as np
import pytest

from repro.faults import corrupt_cache_entry
from repro.runners import (
    QUARANTINE_DIR,
    ResultCache,
    RunConfig,
    cache_for,
    cache_key,
)
from repro.sim.sweep import SweepResult


def make_sweep(scale: float = 1.0) -> SweepResult:
    return SweepResult(
        steps=np.arange(4, dtype=np.int64),
        mean_abs_error=np.array([0.5, 0.25, 0.125, 0.0]) * scale,
        violation_probability=np.array([1.0, 0.5, 0.25, 0.0]),
        rated_step=3,
        settle_step=3,
        error_free_step=3,
        num_samples=16,
    )


class TestCacheKey:
    def test_deterministic_and_order_free(self):
        assert cache_key(a=1, b="x") == cache_key(b="x", a=1)

    def test_sensitive_to_every_component(self):
        base = cache_key(experiment="sweep", seed=2014, num_samples=100)
        assert base != cache_key(experiment="sweep", seed=2015, num_samples=100)
        assert base != cache_key(experiment="sweep", seed=2014, num_samples=101)
        assert base != cache_key(experiment="mc", seed=2014, num_samples=100)

    def test_numpy_components_canonicalised(self):
        assert cache_key(depths=np.array([4, 5])) == cache_key(depths=[4, 5])


class TestPutGet:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = make_sweep()
        key = cache_key(experiment="sweep", seed=1)
        cache.put(key, result, {"experiment": "sweep", "seed": 1})
        back = cache.get(key)
        assert isinstance(back, SweepResult)
        for name in SweepResult._array_fields:
            assert np.array_equal(getattr(result, name), getattr(back, name))
        assert back.error_free_step == result.error_free_step

    def test_split_storage_on_disk(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        cache.put(key, make_sweep(), {"x": 1})
        assert (tmp_path / f"{key}.json").exists()
        assert (tmp_path / f"{key}.npz").exists()
        meta = json.loads((tmp_path / f"{key}.json").read_text())
        # arrays live in the npz, not the JSON
        assert sorted(meta["arrays"]) == sorted(SweepResult._array_fields)
        for name in SweepResult._array_fields:
            assert name not in meta["result"]
        assert meta["key_components"] == {"x": 1}

    def test_miss_and_hit_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        assert cache.get(key) is None
        cache.put(key, make_sweep(), {})
        assert cache.get(key) is not None
        assert cache.stats() == {
            "hits": 1, "misses": 1, "corrupt": 0, "entries": 1,
        }

    def test_different_key_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache_key(seed=1), make_sweep(), {})
        assert cache.get(cache_key(seed=2)) is None

    def test_contains_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        assert not cache.contains(key)
        cache.put(key, make_sweep(), {})
        assert cache.contains(key)
        assert cache.clear() == 1
        assert not cache.contains(key)
        assert list(tmp_path.glob("*.npz")) == []


class TestCorruption:
    def test_truncated_json_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        cache.put(key, make_sweep(), {})
        (tmp_path / f"{key}.json").write_text("{not json")
        with pytest.warns(RuntimeWarning, match="corrupt result-cache"):
            assert cache.get(key) is None

    def test_missing_npz_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        cache.put(key, make_sweep(), {})
        (tmp_path / f"{key}.npz").unlink()
        with pytest.warns(RuntimeWarning):
            assert cache.get(key) is None

    def test_unknown_kind_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        cache.put(key, make_sweep(), {})
        path = tmp_path / f"{key}.json"
        meta = json.loads(path.read_text())
        meta["result"]["kind"] = "hologram"
        path.write_text(json.dumps(meta))
        with pytest.warns(RuntimeWarning):
            assert cache.get(key) is None

    @pytest.mark.parametrize("mode", ["garbage", "truncate", "npz"])
    def test_rotten_bytes_quarantined_and_recomputed(self, tmp_path, mode):
        """The satellite scenario: garbage bytes = miss, never a crash."""
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        cache.put(key, make_sweep(), {})
        corrupt_cache_entry(tmp_path, key, mode=mode)
        with pytest.warns(RuntimeWarning, match="quarantined|recomputing"):
            assert cache.get(key) is None
        assert cache.stats()["corrupt"] == 1
        # the evidence moved aside instead of being destroyed
        assert list((tmp_path / QUARANTINE_DIR).iterdir())
        # the caller's recompute overwrites cleanly and hits afterwards
        cache.put(key, make_sweep(), {})
        assert isinstance(cache.get(key), SweepResult)

    def test_format_version_mismatch_is_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        cache.put(key, make_sweep(), {})
        path = tmp_path / f"{key}.json"
        meta = json.loads(path.read_text())
        meta["format"] = 999
        path.write_text(json.dumps(meta))
        with pytest.warns(RuntimeWarning):
            assert cache.get(key) is None


class TestRawPayloads:
    def test_round_trip_exact_floats(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"sum": 0.1 + 0.2, "n": 7, "design": "online"}
        cache.put_raw("ckpt", payload)
        assert cache.get_raw("ckpt") == payload

    def test_missing_is_plain_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get_raw("nope") is None
        assert cache.stats()["corrupt"] == 0

    def test_kind_clash_is_plain_miss_both_ways(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(x=1)
        cache.put(key, make_sweep(), {})
        cache.put_raw("raw", {"a": 1})
        assert cache.get_raw(key) is None  # Result under a raw read
        assert cache.get("raw") is None  # raw under a Result read
        assert cache.stats()["corrupt"] == 0

    def test_corrupt_raw_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_raw("raw", {"a": 1})
        (tmp_path / "raw.json").write_text("{broken")
        with pytest.warns(RuntimeWarning):
            assert cache.get_raw("raw") is None
        assert cache.stats()["corrupt"] == 1


class TestCacheFor:
    def test_none_without_cache_dir(self):
        assert cache_for(RunConfig(cache_dir=None)) is None

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        cache = cache_for(RunConfig(cache_dir=str(target)))
        assert isinstance(cache, ResultCache)
        assert target.is_dir()


class TestCrashSafety:
    """SIGKILL mid-put must never leave an entry that reads as torn.

    The commit protocol: arrays (npz) land first, the JSON rename is
    the commit point, every rename is preceded by an fsync.  So after a
    kill at *any* instant, a key whose JSON is visible must load
    cleanly — and stray ``*.tmp`` droppings from the killed writer are
    swept by the next cache open once they are unambiguously stale.
    """

    CHILD = """
import sys
import numpy as np
from repro.runners import ResultCache
from repro.sim.sweep import SweepResult

cache = ResultCache(sys.argv[1])
rng = np.random.default_rng(int(sys.argv[2]))
n = 20000  # large arrays widen the mid-write kill window
i = 0
print("ready", flush=True)
while True:
    result = SweepResult(
        steps=np.arange(n, dtype=np.int64),
        mean_abs_error=rng.random(n),
        violation_probability=rng.random(n),
        rated_step=3,
        settle_step=3,
        error_free_step=3,
        num_samples=16,
    )
    cache.put(f"round{sys.argv[2]}-entry{i:05d}", result)
    i += 1
"""

    def test_sigkill_mid_put_leaves_no_torn_entries(self, tmp_path):
        import os
        import signal
        import subprocess
        import sys
        import time
        import warnings

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        env.pop("REPRO_CACHE_DIR", None)
        for round_no in range(3):
            proc = subprocess.Popen(
                [sys.executable, "-c", self.CHILD,
                 str(tmp_path), str(round_no)],
                env=env, stdout=subprocess.PIPE,
            )
            proc.stdout.readline()  # wait until the child started writing
            time.sleep(0.25)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        cache = ResultCache(tmp_path)
        keys = sorted(p.stem for p in tmp_path.glob("*.json"))
        assert keys, "the children never committed a single entry"
        with warnings.catch_warnings():
            # a quarantine warning here IS the torn entry we must not see
            warnings.simplefilter("error", RuntimeWarning)
            for key in keys:
                result = cache.get(key)
                assert result is not None, f"committed entry {key} unreadable"
                assert result.num_samples == 16
        assert not (tmp_path / QUARANTINE_DIR).exists()

    def test_committed_json_implies_readable_arrays(self, tmp_path):
        # the ordering half of the protocol: for every visible JSON the
        # npz it references must already be complete (npz first, JSON =
        # commit point)
        cache = ResultCache(tmp_path)
        key = cache_key(ordering="check")
        cache.put(key, make_sweep())
        meta = json.loads((tmp_path / f"{key}.json").read_text())
        assert meta["arrays"]
        assert (tmp_path / f"{key}.npz").exists()


class TestStaleTmpSweep:
    def test_old_droppings_swept_on_open(self, tmp_path):
        import os
        import time

        from repro.runners.cache import STALE_TMP_SECONDS

        stale = tmp_path / "deadbeefabc123.tmp"
        stale.write_bytes(b"half-written npz bytes")
        old = time.time() - STALE_TMP_SECONDS - 120
        os.utime(stale, (old, old))
        fresh = tmp_path / "cafef00d456789.tmp"
        fresh.write_bytes(b"a writer may still own this")
        ResultCache(tmp_path)
        assert not stale.exists()  # unambiguously dead: swept
        assert fresh.exists()  # possibly live writer: untouched

    def test_sweep_tolerates_concurrent_unlink(self, tmp_path):
        # racing caches must both open fine even if one sweeps first
        import os
        import time

        from repro.runners.cache import STALE_TMP_SECONDS

        stale = tmp_path / "feedface000000.tmp"
        stale.write_bytes(b"x")
        old = time.time() - STALE_TMP_SECONDS - 120
        os.utime(stale, (old, old))
        a = ResultCache(tmp_path)
        b = ResultCache(tmp_path)
        assert not stale.exists()
        key = cache_key(race=1)
        a.put(key, make_sweep())
        assert b.get(key) is not None
