"""RunConfig: defaults, environment fallbacks, validation, describe()."""

import pytest

from repro.runners import DEFAULT_SHARD_SIZE, RunConfig


class TestDefaults:
    def test_field_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        config = RunConfig()
        assert config.ndigits == 8
        assert config.delta == 3
        assert config.backend == "packed"
        assert config.seed == 2014
        assert config.jobs == 1
        assert config.cache_dir is None
        assert config.shard_size == DEFAULT_SHARD_SIZE

    def test_env_jobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert RunConfig().jobs == 3

    def test_env_jobs_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        assert RunConfig().jobs == 1

    def test_env_cache_dir(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert RunConfig().cache_dir == str(tmp_path)

    def test_explicit_beats_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = RunConfig(jobs=5, cache_dir=None)
        assert config.jobs == 5
        assert config.cache_dir is None


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ndigits": 0},
            {"ndigits": -3},
            {"delta": 0},
            {"jobs": 0},
            {"jobs": -1},
            {"shard_size": 0},
            {"shard_timeout": 0},
            {"shard_timeout": -2.5},
        ],
    )
    def test_rejects_nonpositive(self, kwargs):
        with pytest.raises(ValueError):
            RunConfig(**kwargs)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            RunConfig(backend="quantum")

    def test_messages_name_the_offending_value(self):
        with pytest.raises(ValueError, match=r"ndigits.*-3"):
            RunConfig(ndigits=-3)
        with pytest.raises(ValueError, match=r"jobs.*0"):
            RunConfig(jobs=0)
        with pytest.raises(ValueError, match="quantum"):
            RunConfig(backend="quantum")

    def test_uncreatable_cache_dir_fails_eagerly(self, tmp_path):
        # a *file* where a parent directory must go: mkdir cannot succeed
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        with pytest.raises(ValueError, match="cache_dir"):
            RunConfig(cache_dir=str(blocker / "cache"))

    def test_valid_cache_dir_is_created_eagerly(self, tmp_path):
        target = tmp_path / "fresh" / "cache"
        RunConfig(cache_dir=str(target))
        assert target.is_dir()

    def test_shard_timeout_accepts_positive_and_none(self):
        assert RunConfig(shard_timeout=None).shard_timeout is None
        assert RunConfig(shard_timeout=1.5).shard_timeout == 1.5


class TestWith:
    def test_with_replaces(self):
        config = RunConfig(ndigits=6)
        other = config.with_(jobs=4, seed=7)
        assert (other.ndigits, other.jobs, other.seed) == (6, 4, 7)
        # frozen: the original is untouched
        assert (config.jobs, config.seed) == (config.jobs, 2014)

    def test_with_validates(self):
        with pytest.raises(ValueError):
            RunConfig().with_(jobs=-1)


class TestDescribe:
    def test_excludes_execution_details(self, tmp_path):
        described = RunConfig(jobs=8, cache_dir=str(tmp_path)).describe()
        assert "jobs" not in described
        assert "cache_dir" not in described

    def test_execution_details_share_a_description(self, tmp_path):
        a = RunConfig(jobs=1, cache_dir=None)
        b = RunConfig(jobs=8, cache_dir=str(tmp_path), shard_timeout=5.0)
        assert a.describe() == b.describe()

    def test_statistical_identity_differs(self):
        assert RunConfig().describe() != RunConfig(shard_size=100).describe()
        assert RunConfig().describe() != RunConfig(seed=1).describe()
