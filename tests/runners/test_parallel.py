"""ParallelRunner: determinism across jobs, crash fallback, shims.

The two load-bearing guarantees of the orchestration layer:

* ``jobs=1`` and ``jobs=N`` merge to **bit-identical** results for every
  experiment entry point (deterministic shard layout + spawned seeds +
  ordered accumulation);
* a crashing worker pool degrades to in-process execution instead of
  failing the experiment.
"""

import os
import warnings

import numpy as np
import pytest

from repro.runners import (
    ParallelRunner,
    RunConfig,
    seed_tag,
    split_samples,
    spawn_seeds,
)
from repro.sim.error_profile import run_error_profile
from repro.sim.montecarlo import (
    mc_expected_error,
    run_montecarlo,
    run_settle_histogram,
    settle_depth_histogram,
    uniform_digit_batch,
)
from repro.sim.sweep import OnlineMultiplierHarness, run_sweep


class TestSplitSamples:
    def test_exact_division(self):
        assert split_samples(600, 200) == [200, 200, 200]

    def test_remainder_shard(self):
        assert split_samples(650, 200) == [200, 200, 200, 50]

    def test_single_small_shard(self):
        assert split_samples(5, 200) == [5]

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_samples(0, 10)
        with pytest.raises(ValueError):
            split_samples(10, 0)


class TestSeeds:
    def test_seed_tag_stable_and_distinct(self):
        assert seed_tag("montecarlo") == seed_tag("montecarlo")
        assert seed_tag("montecarlo") != seed_tag("sweep")
        assert 0 <= seed_tag("sweep") < 2**32

    def test_spawned_streams_reproducible(self):
        a = spawn_seeds(2014, 3, seed_tag("x"))
        b = spawn_seeds(2014, 3, seed_tag("x"))
        for sa, sb in zip(a, b):
            assert (
                np.random.default_rng(sa).integers(0, 1 << 30, 8).tolist()
                == np.random.default_rng(sb).integers(0, 1 << 30, 8).tolist()
            )

    def test_tags_separate_streams(self):
        a, = spawn_seeds(2014, 1, seed_tag("x"))
        b, = spawn_seeds(2014, 1, seed_tag("y"))
        assert (
            np.random.default_rng(a).integers(0, 1 << 30, 8).tolist()
            != np.random.default_rng(b).integers(0, 1 << 30, 8).tolist()
        )


# module-level workers: must be picklable for the process pool
def _double(task):
    return task * 2


def _crash_in_child(task):
    if os.getpid() != task["parent"]:
        os._exit(3)  # hard-kill pool workers; inline execution survives
    return task["value"] * 2


def _raise_value_error(task):
    raise ValueError(f"bad task {task}")


class TestRunnerMap:
    def test_inline_map_preserves_order(self):
        runner = ParallelRunner(jobs=1)
        assert runner.map(_double, [3, 1, 2]) == [6, 2, 4]
        assert all(s.where == "inline" for s in runner.stats.shards)

    def test_pool_map_preserves_order(self):
        runner = ParallelRunner(jobs=2)
        assert runner.map(_double, list(range(7))) == [
            2 * i for i in range(7)
        ]
        assert any(s.where == "pool" for s in runner.stats.shards)

    def test_stats_populated(self):
        runner = ParallelRunner(jobs=1)
        runner.map(_double, [1, 2, 3], samples=[10, 10, 5])
        stats = runner.finalize_stats("unit", cache="off")
        assert stats.samples == 25
        assert stats.num_shards == 3
        assert stats.elapsed > 0
        assert stats.samples_per_second > 0
        assert not stats.degraded

    def test_worker_crash_degrades_to_inline(self):
        runner = ParallelRunner(jobs=2, backoff=0.01)
        tasks = [{"parent": os.getpid(), "value": v} for v in range(4)]
        results = runner.map(_crash_in_child, tasks, samples=[1] * 4)
        assert results == [0, 2, 4, 6]
        stats = runner.finalize_stats("crashy")
        assert stats.degraded
        assert stats.pool_failures == runner.max_pool_failures
        assert stats.retries >= 1
        assert all(s.where == "inline" for s in stats.shards)

    def test_degrade_reason_names_the_failure(self):
        # the abandonment reason must survive into the stats (and from
        # there into result metadata / the [runner] line), not just a
        # retry counter
        from repro.sim.reporting import format_run_stats

        runner = ParallelRunner(jobs=2, backoff=0.01)
        tasks = [{"parent": os.getpid(), "value": v} for v in range(4)]
        runner.map(_crash_in_child, tasks, samples=[1] * 4)
        stats = runner.finalize_stats("crashy")
        assert stats.degraded
        assert stats.degrade_reason is not None
        assert "BrokenProcessPool" in stats.degrade_reason
        assert len(stats.failure_reasons) == stats.pool_failures
        assert all("BrokenProcessPool" in r for r in stats.failure_reasons)
        line = format_run_stats(stats)
        assert "degraded=inline" in line
        assert 'degrade_reason="' in line
        assert "BrokenProcessPool" in line

    def test_no_degrade_reason_on_clean_run(self):
        runner = ParallelRunner(jobs=2)
        runner.map(_double, [1, 2, 3])
        stats = runner.finalize_stats("clean")
        assert stats.degrade_reason is None
        assert stats.failure_reasons == []

    def test_degrade_events_and_metrics_recorded(self):
        from repro.obs import Tracer, metrics, use_tracer

        before = metrics().snapshot()["counters"].get("pool.degraded", 0)
        tracer = Tracer()
        with use_tracer(tracer):
            runner = ParallelRunner(jobs=2, backoff=0.01)
            tasks = [{"parent": os.getpid(), "value": v} for v in range(4)]
            runner.map(_crash_in_child, tasks, samples=[1] * 4)
        events = [r for r in tracer.records if r["type"] == "event"]
        names = [e["name"] for e in events]
        assert "pool.failure" in names
        assert "pool.degraded" in names
        degraded = [e for e in events if e["name"] == "pool.degraded"][0]
        assert "BrokenProcessPool" in degraded["attrs"]["reason"]
        after = metrics().snapshot()["counters"]["pool.degraded"]
        assert after == before + 1

    def test_worker_exception_propagates(self):
        runner = ParallelRunner(jobs=2)
        with pytest.raises(ValueError, match="bad task"):
            runner.map(_raise_value_error, [1, 2])

    def test_from_config(self):
        assert ParallelRunner.from_config(RunConfig(jobs=3)).jobs == 3


# small shard_size so even tiny budgets exercise multi-shard merging
def _config(jobs: int) -> RunConfig:
    return RunConfig(ndigits=4, jobs=jobs, cache_dir=None, shard_size=100)


class TestBitIdenticalAcrossJobs:
    def test_montecarlo(self):
        a = run_montecarlo(_config(1), num_samples=350)
        b = run_montecarlo(_config(2), num_samples=350)
        assert np.array_equal(a.depths, b.depths)
        assert np.array_equal(a.mean_abs_error, b.mean_abs_error)
        assert np.array_equal(a.violation_probability, b.violation_probability)

    def test_sweep(self):
        a = run_sweep(_config(1), num_samples=250)
        b = run_sweep(_config(2), num_samples=250)
        assert np.array_equal(a.mean_abs_error, b.mean_abs_error)
        assert np.array_equal(a.violation_probability, b.violation_probability)
        assert a.error_free_step == b.error_free_step

    def test_error_profile(self):
        a = run_error_profile(_config(1), num_samples=250)
        b = run_error_profile(_config(2), num_samples=250)
        assert np.array_equal(a.rates, b.rates)
        assert a.positions == b.positions

    def test_settle_histogram(self):
        a = run_settle_histogram(_config(1), num_samples=350)
        b = run_settle_histogram(_config(2), num_samples=350)
        assert a == b

    def test_run_stats_attached(self):
        result = run_montecarlo(_config(1), num_samples=150)
        stats = result.run_stats
        assert stats.experiment == "montecarlo"
        assert stats.samples == 150
        assert stats.num_shards == 2  # 100 + 50
        assert stats.cache == "off"

    def test_shard_size_changes_the_draw(self):
        a = run_montecarlo(_config(1), num_samples=350)
        b = run_montecarlo(
            _config(1).with_(shard_size=70), num_samples=350
        )
        # different shard layout => different per-shard streams
        assert not np.array_equal(a.mean_abs_error, b.mean_abs_error)


class TestCachedRuns:
    def test_hit_equals_fresh(self, tmp_path):
        config = _config(1).with_(cache_dir=str(tmp_path))
        fresh = run_sweep(config, num_samples=250)
        assert fresh.run_stats.cache == "miss"
        cached = run_sweep(config, num_samples=250)
        assert cached.run_stats.cache == "hit"
        assert np.array_equal(fresh.mean_abs_error, cached.mean_abs_error)
        assert fresh.error_free_step == cached.error_free_step

    def test_param_change_invalidates(self, tmp_path):
        config = _config(1).with_(cache_dir=str(tmp_path))
        run_sweep(config, num_samples=250)
        assert run_sweep(config, num_samples=251).run_stats.cache == "miss"
        assert (
            run_sweep(config.with_(seed=7), num_samples=250).run_stats.cache
            == "miss"
        )

    def test_jobs_change_still_hits(self, tmp_path):
        config = _config(1).with_(cache_dir=str(tmp_path))
        run_montecarlo(config, num_samples=150)
        again = run_montecarlo(config.with_(jobs=2), num_samples=150)
        assert again.run_stats.cache == "hit"


def _sleep_then_double(task):
    import time

    time.sleep(task["sleep"])
    return task["value"] * 2


class TestCancellation:
    """A request-level cancel is a fourth outcome: not success, not a
    pool failure, not a degrade — and it must never pollute the failure
    accounting the service's circuit breaker keys off."""

    def test_precancelled_token_raises_before_any_work(self):
        from repro.runners import CancelToken, RunCancelled

        token = CancelToken()
        token.cancel("caller gave up")
        runner = ParallelRunner(jobs=1, cancel_token=token)
        executed = []

        def worker(task):
            executed.append(task)
            return task

        with pytest.raises(RunCancelled, match="caller gave up"):
            runner.map(worker, [1, 2, 3])
        assert executed == []
        assert runner.stats.cancelled

    def test_inline_cancel_between_shards(self):
        from repro.runners import CancelToken, RunCancelled

        token = CancelToken()
        runner = ParallelRunner(jobs=1, cancel_token=token)
        executed = []

        def worker(task):
            executed.append(task)
            if len(executed) == 2:
                token.cancel()
            return task

        with pytest.raises(RunCancelled):
            runner.map(worker, [1, 2, 3, 4])
        assert executed == [1, 2]  # the check runs before each shard

    def test_pool_cancel_does_not_count_as_pool_failure(self):
        import threading
        import time

        from repro.obs import metrics
        from repro.runners import CancelToken, RunCancelled

        before = metrics().snapshot()["counters"].get("pool.cancelled", 0)
        token = CancelToken()
        runner = ParallelRunner(jobs=2, cancel_token=token)
        tasks = [{"sleep": 0.8, "value": v} for v in range(4)]
        timer = threading.Timer(0.15, token.cancel, args=("deadline",))
        timer.start()
        t0 = time.monotonic()
        try:
            with pytest.raises(RunCancelled, match="deadline"):
                runner.map(_sleep_then_double, tasks, samples=[1] * 4)
        finally:
            timer.cancel()
        assert time.monotonic() - t0 < 0.8  # did not wait for the shards
        stats = runner.finalize_stats("cancelled")
        # the satellite contract: exact failure accounting
        assert stats.cancelled is True
        assert stats.pool_failures == 0
        assert stats.failure_reasons == []
        assert not stats.degraded
        after = metrics().snapshot()["counters"]["pool.cancelled"]
        assert after == before + 1

    def test_cancel_event_recorded_with_reason(self):
        from repro.obs import Tracer, use_tracer
        from repro.runners import CancelToken, RunCancelled

        token = CancelToken()
        token.cancel("client disconnected")
        tracer = Tracer()
        with use_tracer(tracer):
            runner = ParallelRunner(jobs=1, cancel_token=token)
            with pytest.raises(RunCancelled):
                runner.map(_double, [1])
        events = [r for r in tracer.records if r["type"] == "event"]
        cancelled = [e for e in events if e["name"] == "pool.cancelled"]
        assert len(cancelled) == 1
        assert cancelled[0]["attrs"]["reason"] == "client disconnected"

    def test_shard_timeout_reason_string_is_exact(self):
        # the timeout path must keep its documented reason string even
        # with a cancel token installed (the polling await path)
        from repro.runners import CancelToken

        token = CancelToken()
        runner = ParallelRunner(
            jobs=2, shard_timeout=0.05, backoff=0.01, cancel_token=token
        )
        tasks = [{"sleep": 0.4, "value": v} for v in range(2)]
        results = runner.map(_sleep_then_double, tasks, samples=[1, 1])
        assert results == [0, 2]  # degraded inline and finished
        stats = runner.finalize_stats("timeouts")
        assert stats.degraded
        assert not stats.cancelled
        assert stats.pool_failures == runner.max_pool_failures
        assert stats.failure_reasons == [
            "shard exceeded shard_timeout=0.05s"
        ] * runner.max_pool_failures

    def test_timeout_without_token_keeps_same_reason(self):
        runner = ParallelRunner(jobs=2, shard_timeout=0.05, backoff=0.01)
        tasks = [{"sleep": 0.4, "value": v} for v in range(2)]
        runner.map(_sleep_then_double, tasks, samples=[1, 1])
        stats = runner.finalize_stats("timeouts")
        assert stats.failure_reasons == [
            "shard exceeded shard_timeout=0.05s"
        ] * runner.max_pool_failures

    def test_token_is_reusable_across_runners_until_fired(self):
        from repro.runners import CancelToken

        token = CancelToken()
        r1 = ParallelRunner(jobs=1, cancel_token=token)
        assert r1.map(_double, [1, 2]) == [2, 4]
        r2 = ParallelRunner(jobs=1, cancel_token=token)
        assert r2.map(_double, [3]) == [6]
        assert not r1.stats.cancelled and not r2.stats.cancelled


def _count_span_and_sleep(task):
    """Bump a counter and open a span, then sleep — picklable, so the
    pool path ships the delta/spans and the inline path records direct."""
    import time

    from repro.obs.metrics import metrics as _metrics
    from repro.obs.trace import current_tracer as _current_tracer

    _metrics().count("test.fold_counter")
    with _current_tracer().span("work", value=task["value"]):
        time.sleep(task["sleep"])
    return task["value"] * 2


class TestFailurePathTelemetry:
    """Worker-span re-parenting, counter folding, and progress events on
    the shard-timeout and CancelToken/RunCancelled paths — the happy and
    crash paths are asserted elsewhere."""

    def test_counter_folding_and_spans_under_shard_timeout(self):
        from repro.obs import Tracer, metrics, use_tracer

        before = metrics().snapshot()["counters"].get("test.fold_counter", 0)
        tracer = Tracer()
        with use_tracer(tracer):
            runner = ParallelRunner(jobs=2, shard_timeout=0.1, backoff=0.01)
            tasks = [
                {"sleep": 0.0, "value": 0},
                {"sleep": 0.0, "value": 1},
                {"sleep": 0.5, "value": 2},  # exceeds the timeout in pool
            ]
            results = runner.map(
                _count_span_and_sleep, tasks, samples=[1] * 3
            )
        assert results == [0, 2, 4]
        stats = runner.finalize_stats("timeout-fold")
        assert stats.degraded  # shard 2 degraded to inline

        # counter folding: pool shards fold their delta exactly once,
        # the timed-out attempts' counters die with the abandoned
        # workers, the inline rerun bumps the parent directly — total is
        # exactly one bump per shard, no double counting
        after = metrics().snapshot()["counters"]["test.fold_counter"]
        assert after == before + 3

        # span re-parenting: one "work" span per shard survived, each
        # parented under a "shard" span (pool shards via absorb with the
        # s<i>. prefix, the degraded shard recorded inline)
        spans = [r for r in tracer.records if r["type"] == "span"]
        shard_spans = {
            s["attrs"]["shard"]: s for s in spans if s["name"] == "shard"
        }
        work_spans = [s for s in spans if s["name"] == "work"]
        assert set(shard_spans) == {0, 1, 2}
        assert len(work_spans) == 3
        shard_ids = {s["id"] for s in shard_spans.values()}
        assert all(w["parent"] in shard_ids for w in work_spans)
        prefixed = [w for w in work_spans if w["id"][0] == "s"]
        assert len(prefixed) == 2  # the two pool shards shipped buffers

    def test_inline_cancel_emits_terminal_cancelled_transitions(self):
        from repro.obs.events import EventBus, ProgressReporter
        from repro.runners import CancelToken, RunCancelled

        bus = EventBus()
        sub = bus.subscribe()
        token = CancelToken()
        runner = ParallelRunner(jobs=1, cancel_token=token)
        runner.progress = ProgressReporter(run_id="cancel", bus=bus)
        executed = []

        def worker(task):
            executed.append(task)
            if len(executed) == 2:
                token.cancel("enough")
            return task

        with pytest.raises(RunCancelled):
            runner.map(worker, [1, 2, 3, 4], samples=[5, 5, 5, 5])

        transitions = {}
        for event in sub.drain():
            transitions.setdefault(event.shard, []).append(event.transition)
        assert transitions[0] == ["queued", "started", "completed"]
        assert transitions[1] == ["queued", "started", "completed"]
        # shards that never ran still terminate explicitly — clients see
        # an end-of-run marker, not silence
        assert transitions[2] == ["queued", "cancelled"]
        assert transitions[3] == ["queued", "cancelled"]

    def test_pool_cancel_folds_completed_and_cancels_rest(self):
        import threading

        from repro.obs import Tracer, metrics, use_tracer
        from repro.obs.events import EventBus, ProgressReporter
        from repro.runners import CancelToken, RunCancelled

        before = metrics().snapshot()["counters"].get("test.fold_counter", 0)
        bus = EventBus()
        sub = bus.subscribe()
        token = CancelToken()
        tracer = Tracer()
        tasks = [
            {"sleep": 0.0, "value": 0},
            {"sleep": 0.0, "value": 1},
            {"sleep": 1.2, "value": 2},
            {"sleep": 1.2, "value": 3},
        ]
        timer = threading.Timer(0.3, token.cancel, args=("deadline",))
        timer.start()
        try:
            with use_tracer(tracer):
                runner = ParallelRunner(jobs=2, cancel_token=token)
                runner.progress = ProgressReporter(run_id="pc", bus=bus)
                with pytest.raises(RunCancelled, match="deadline"):
                    runner.map(
                        _count_span_and_sleep, tasks, samples=[1] * 4
                    )
        finally:
            timer.cancel()

        completed = {s.index for s in runner.stats.shards}
        terminal = {}
        for event in sub.drain():
            terminal[event.shard] = event.transition
        # every shard terminates: collected ones completed, the rest
        # with an explicit cancelled transition
        assert set(terminal) == {0, 1, 2, 3}
        for shard in range(4):
            expected = "completed" if shard in completed else "cancelled"
            assert terminal[shard] == expected

        # only collected shards folded their worker counters
        after = metrics().snapshot()["counters"].get("test.fold_counter", 0)
        assert after == before + len(completed)

        # and only collected shards had their worker spans re-parented
        spans = [r for r in tracer.records if r["type"] == "span"]
        work_spans = [s for s in spans if s["name"] == "work"]
        shard_ids = {s["id"] for s in spans if s["name"] == "shard"}
        assert len(work_spans) == len(completed)
        assert all(w["parent"] in shard_ids for w in work_spans)

    def test_pool_loss_emits_retried_transitions(self):
        from repro.obs.events import EventBus, ProgressReporter

        bus = EventBus()
        sub = bus.subscribe(capacity=10_000)
        runner = ParallelRunner(jobs=2, backoff=0.01)
        runner.progress = ProgressReporter(run_id="crashy", bus=bus)
        tasks = [{"parent": os.getpid(), "value": v} for v in range(4)]
        results = runner.map(_crash_in_child, tasks, samples=[1] * 4)
        assert results == [0, 2, 4, 6]
        stats = runner.finalize_stats("crashy")
        assert stats.degraded

        transitions = {}
        for event in sub.drain():
            transitions.setdefault(event.shard, []).append(event.transition)
        for shard, seq in transitions.items():
            assert seq[0] == "queued"
            assert seq[-1] == "completed"
            # one retried per lost pool, then the inline rerun finishes
            assert seq.count("retried") == stats.pool_failures
            assert "cancelled" not in seq


class TestDeprecationShims:
    def test_mc_expected_error_warns_but_matches_golden_path(self):
        with pytest.warns(DeprecationWarning):
            result = mc_expected_error(4, num_samples=100, seed=2014)
        assert result.num_samples == 100

    def test_settle_depth_histogram_warns(self):
        with pytest.warns(DeprecationWarning):
            histogram = settle_depth_histogram(4, num_samples=100)
        assert sum(histogram.values()) == pytest.approx(1.0)

    def test_profile_circuit_warns(self):
        from repro.sim.error_profile import profile_circuit

        rng = np.random.default_rng(0)
        harness = OnlineMultiplierHarness(2)
        ports = harness.encode(
            uniform_digit_batch(2, 4, rng), uniform_digit_batch(2, 4, rng)
        )
        with pytest.warns(DeprecationWarning):
            profile = profile_circuit(
                harness.circuit,
                ports,
                [["zp0", "zn0"]],
                ["z0"],
                [1, 2],
                delay_model=harness.delay_model,
            )
        assert profile.rates.shape == (2, 1)

    def test_new_api_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_montecarlo(_config(1), num_samples=120)
