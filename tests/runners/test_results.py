"""Result protocol: JSON round-trips, registry dispatch, jsonable()."""

import json

import numpy as np
import pytest

from repro.imaging.filters import FilterStudyResult
from repro.runners import (
    Result,
    jsonable,
    registered_kinds,
    result_from_dict,
)
from repro.sim.error_profile import DigitErrorProfile
from repro.sim.montecarlo import MonteCarloResult
from repro.sim.sweep import SweepResult


def sample_results():
    return [
        MonteCarloResult(
            ndigits=4,
            delta=3,
            num_samples=10,
            depths=np.array([4, 5, 6, 7], dtype=np.int64),
            mean_abs_error=np.array([0.1, 0.03, 0.0, 0.0]),
            violation_probability=np.array([0.8, 0.5, 0.0, 0.0]),
        ),
        SweepResult(
            steps=np.arange(5, dtype=np.int64),
            mean_abs_error=np.array([0.5, 0.25, 1.0 / 3.0, 0.0, 0.0]),
            violation_probability=np.array([1.0, 0.5, 0.25, 0.0, 0.0]),
            rated_step=4,
            settle_step=3,
            error_free_step=3,
            num_samples=10,
        ),
        DigitErrorProfile(
            steps=np.array([0, 1, 2], dtype=np.int64),
            positions=["z0", "z1"],
            rates=np.array([[0.5, 0.25], [0.1, 0.0], [0.0, 0.0]]),
        ),
        FilterStudyResult(
            images=["lena", "pepper"],
            arithmetics=["traditional", "online"],
            factors=[1.05, 1.10],
            kernel="gaussian",
            size=24,
            ndigits=8,
            rated_step=np.array([[100, 101], [140, 141]], dtype=np.int64),
            error_free_step=np.array([[90, 91], [110, 111]], dtype=np.int64),
            settle_step=np.array([[100, 101], [140, 141]], dtype=np.int64),
            mre_percent=np.arange(8, dtype=np.float64).reshape(2, 2, 2) / 7.0,
            snr_db=np.arange(8, dtype=np.float64).reshape(2, 2, 2) * 3.1,
        ),
    ]


@pytest.mark.parametrize(
    "result", sample_results(), ids=lambda r: type(r).kind
)
class TestRoundTrip:
    def test_satisfies_protocol(self, result):
        assert isinstance(result, Result)

    def test_to_dict_is_pure_json(self, result):
        # json.dumps with allow_nan=False rejects anything non-JSON
        json.dumps(result.to_dict(), allow_nan=False)

    def test_json_round_trip_bit_exact(self, result):
        wire = json.loads(json.dumps(result.to_dict()))
        back = result_from_dict(wire)
        assert type(back) is type(result)
        for name, dtype in type(result)._array_fields.items():
            original = getattr(result, name)
            restored = getattr(back, name)
            assert restored.dtype == np.dtype(dtype)
            assert np.array_equal(original, restored)

    def test_kind_in_wire_format(self, result):
        assert result.to_dict()["kind"] == type(result).kind


class TestRegistry:
    def test_all_kinds_registered(self):
        kinds = registered_kinds()
        assert {
            "montecarlo",
            "sweep",
            "error_profile",
            "filter_study",
        } <= set(kinds)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError, match="unknown result kind"):
            result_from_dict({"kind": "hologram"})

    def test_missing_kind_raises(self):
        with pytest.raises(KeyError):
            result_from_dict({"steps": [1, 2]})


class TestJsonable:
    def test_numpy_values(self):
        out = jsonable(
            {
                "arr": np.array([1, 2]),
                "i": np.int64(3),
                "f": np.float64(0.5),
                "nested": [np.array([0.25]), (np.int32(1),)],
            }
        )
        assert out == {"arr": [1, 2], "i": 3, "f": 0.5, "nested": [[0.25], [1]]}
        json.dumps(out)
