"""Circuit-breaker state machine under an injectable clock."""

import pytest

from repro.obs.metrics import metrics
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def make(clock=None, **kwargs):
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("reset_timeout", 5.0)
    return CircuitBreaker(clock=clock or FakeClock(), **kwargs)


class TestClosed:
    def test_starts_closed_and_allows(self):
        breaker = make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker = make()
        breaker.record_failure("f1")
        breaker.record_failure("f2")
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker = make()
        breaker.record_failure("f1")
        breaker.record_failure("f2")
        breaker.record_success()
        breaker.record_failure("f3")
        breaker.record_failure("f4")
        assert breaker.state == CLOSED  # 2 consecutive, not 4

    def test_threshold_opens(self):
        breaker = make()
        for i in range(3):
            breaker.record_failure(f"f{i}")
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.last_failure == "f2"


class TestOpenAndHalfOpen:
    def _tripped(self):
        clock = FakeClock()
        breaker = make(clock)
        for i in range(3):
            breaker.record_failure(f"f{i}")
        return breaker, clock

    def test_blocks_until_cooldown_elapses(self):
        breaker, clock = self._tripped()
        clock.advance(4.99)
        assert not breaker.allow()
        clock.advance(0.02)
        assert breaker.allow()  # first probe
        assert breaker.state == HALF_OPEN

    def test_probe_budget_is_bounded(self):
        breaker, clock = self._tripped()
        clock.advance(5.1)
        assert breaker.allow()
        assert not breaker.allow()  # only one probe by default
        assert not breaker.allow()

    def test_probe_success_closes(self):
        breaker, clock = self._tripped()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()
        assert breaker.last_failure is None

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock = self._tripped()
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_failure("probe died")
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert not breaker.allow()  # cooldown restarted at the re-trip
        clock.advance(0.2)
        assert breaker.allow()

    def test_multiple_probe_slots(self):
        clock = FakeClock()
        breaker = make(clock, half_open_probes=3)
        for i in range(3):
            breaker.record_failure(f"f{i}")
        clock.advance(5.1)
        assert [breaker.allow() for _ in range(4)] == [
            True, True, True, False
        ]


class TestMetrics:
    def test_open_close_counters_and_gauge(self):
        metrics().reset()
        clock = FakeClock()
        breaker = make(clock)
        for i in range(3):
            breaker.record_failure(f"f{i}")
        snap = metrics().snapshot()
        assert snap["counters"]["service.breaker.opened"] == 1
        assert snap["gauges"]["service.breaker_open"] == 1.0
        clock.advance(5.1)
        assert breaker.allow()
        breaker.record_success()
        snap = metrics().snapshot()
        assert snap["counters"]["service.breaker.closed"] == 1
        assert snap["gauges"]["service.breaker_open"] == 0.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"reset_timeout": 0.0},
            {"half_open_probes": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            CircuitBreaker(**kwargs)
