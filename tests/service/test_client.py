"""ServiceClient internals: routing-table hygiene under timeouts.

A client that times requests out against a stalled daemon must not
accumulate dead entries in its routing tables — one leaked future per
timed-out request, over the life of a long-lived connection, is an
unbounded leak (and lets a late response resolve a future nobody is
awaiting anymore).
"""

import asyncio

import pytest

from repro.service.client import ServiceClient


async def stalled_server():
    """A daemon that reads requests forever and never answers."""

    async def on_client(reader, writer):
        try:
            while await reader.readline():
                pass
        finally:
            writer.close()

    server = await asyncio.start_server(on_client, host="127.0.0.1", port=0)
    return server, server.sockets[0].getsockname()[1]


class TestTimeoutHygiene:
    def test_timed_out_requests_leave_no_waiting_entries(self):
        async def main():
            server, port = await stalled_server()
            client = await ServiceClient.connect("127.0.0.1", port)
            for i in range(5):
                with pytest.raises(asyncio.TimeoutError):
                    await client.request(
                        "montecarlo", {"samples": 10}, timeout=0.02
                    )
            waiting, progress = len(client._waiting), len(client._progress)
            await client.aclose()
            server.close()
            await server.wait_closed()
            return waiting, progress

        waiting, progress = asyncio.run(main())
        assert waiting == 0  # the future must not outlive its request
        assert progress == 0

    def test_progress_handlers_cleaned_up_too(self):
        async def main():
            server, port = await stalled_server()
            client = await ServiceClient.connect("127.0.0.1", port)
            with pytest.raises(asyncio.TimeoutError):
                await client.request(
                    "montecarlo", {"samples": 10}, timeout=0.02,
                    on_progress=lambda frame: None,
                )
            waiting, progress = len(client._waiting), len(client._progress)
            await client.aclose()
            server.close()
            await server.wait_closed()
            return waiting, progress

        waiting, progress = asyncio.run(main())
        assert (waiting, progress) == (0, 0)
