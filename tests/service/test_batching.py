"""Micro-batching: compatible requests fuse into one evaluation whose
split responses are byte-identical to solo runs.

Same test style as ``test_daemon.py``: each test drives its own event
loop with ``asyncio.run`` against a real daemon socket; the real
evaluator is used wherever bit-identity is the claim under test, and
injected evaluators wherever failure-path splitting is.
"""

import asyncio
import json
import time

import pytest

from repro.obs.metrics import metrics
from repro.runners.config import RunConfig
from repro.service import (
    EvalService,
    ServiceClient,
    ServiceConfig,
    TransientEvalError,
)
from repro.service.batch import MicroBatcher, merge_requests
from repro.service.daemon import evaluate_request
from repro.service.requests import parse_request
from repro.service.retry import RetryPolicy


BASE = RunConfig(ndigits=3, seed=7, jobs=1, cache_dir=None)
FAST_RETRY = RetryPolicy(base=0.005, cap=0.01, budget=0.03, max_attempts=3)


def service_config(**overrides):
    kwargs = dict(
        run_config=BASE,
        concurrency=2,
        batch_window=0.25,
        retry=FAST_RETRY,
        failure_threshold=2,
        reset_timeout=0.2,
        drain_timeout=2.0,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


def counted(evaluator):
    """Wrap an evaluator, recording each invocation's coalescing key."""
    calls = []

    def wrapped(req, token):
        calls.append(req.key)
        return evaluator(req, token)

    return wrapped, calls


async def started(config=None, evaluator=None):
    service = EvalService(config or service_config(), evaluator=evaluator)
    await service.start()
    client = await ServiceClient.connect("127.0.0.1", service.port)
    return service, client


async def finish(service, client):
    await client.aclose()
    await service.drain()


def canonical(response):
    return json.dumps(response["result"], sort_keys=True)


def parse(kind, params, deadline=None):
    return parse_request(
        {"id": "t", "kind": kind, "params": params, "deadline": deadline},
        base_config=BASE,
    )


class TestMergeRequests:
    def test_union_grid_carries_the_organic_content_address(self):
        r1 = parse("montecarlo", {"samples": 80, "depths": [2, 4]})
        r2 = parse("montecarlo", {"samples": 80, "depths": [3]})
        merged = merge_requests([r1, r2])
        assert merged.params["depths"] == (2, 3, 4)
        # the merged request is indistinguishable from an organic
        # request for the union grid — same key, same cache entry
        organic = parse("montecarlo", {"samples": 80, "depths": [2, 3, 4]})
        assert merged.key == organic.key
        assert merged.batch_key == r1.batch_key

    def test_sweep_union_steps(self):
        r1 = parse("sweep", {"samples": 80, "steps": [1, 2]})
        r2 = parse("sweep", {"samples": 80, "steps": [2, 3]})
        merged = merge_requests([r1, r2])
        assert merged.params["steps"] == (1, 2, 3)

    def test_different_batch_classes_refuse_to_merge(self):
        r1 = parse("montecarlo", {"samples": 80, "depths": [2]})
        r2 = parse("montecarlo", {"samples": 81, "depths": [3]})
        assert r1.batch_key != r2.batch_key
        with pytest.raises(ValueError):
            merge_requests([r1, r2])

    def test_synthesis_is_never_batchable(self):
        req = parse("synthesis", {"samples": 50})
        assert req.batch_key is None

    def test_deadline_is_part_of_the_compatibility_class(self):
        r1 = parse("montecarlo", {"samples": 80, "depths": [2]}, deadline=5.0)
        r2 = parse("montecarlo", {"samples": 80, "depths": [3]})
        assert r1.batch_key != r2.batch_key


class TestMicroBatcherValidation:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda members: None, window=0.0)

    def test_rejects_unbatchable_request(self):
        async def main():
            batcher = MicroBatcher(lambda members: None, window=0.01)
            req = parse("synthesis", {"samples": 50})
            with pytest.raises(ValueError):
                await batcher.submit(req)

        asyncio.run(main())


class TestBatchedBitIdentity:
    def test_compatible_requests_fuse_once_and_split_bit_identical(self):
        metrics().reset()
        evaluator, calls = counted(evaluate_request)

        async def main():
            service, client = await started(evaluator=evaluator)
            # both land inside one gather window -> one fused evaluation
            b1, b2 = await asyncio.gather(
                client.request("montecarlo", {"samples": 80,
                                              "depths": [2, 4]}),
                client.request("montecarlo", {"samples": 80, "depths": [3]}),
            )
            # replay each request alone -> the ordinary solo path
            s1 = await client.request(
                "montecarlo", {"samples": 80, "depths": [2, 4]}
            )
            s2 = await client.request(
                "montecarlo", {"samples": 80, "depths": [3]}
            )
            await finish(service, client)
            return b1, b2, s1, s2

        b1, b2, s1, s2 = asyncio.run(main())
        merged = parse("montecarlo", {"samples": 80, "depths": [2, 3, 4]})
        assert calls[0] == merged.key  # the fused union-grid evaluation
        assert len(calls) == 3  # 1 fused + 2 solo replays
        for batched, solo in ((b1, s1), (b2, s2)):
            assert batched["ok"] and solo["ok"]
            assert batched["key"] == solo["key"]
            assert canonical(batched) == canonical(solo)  # byte-identical
        assert b1["result"]["depths"] == [2, 4]
        assert b2["result"]["depths"] == [3]
        counters = metrics().snapshot()["counters"]
        assert counters["service.batched"] == 2
        assert "service.batch_size" in metrics().snapshot()["histograms"]

    def test_batched_sweep_recomputes_member_error_free_step(self):
        evaluator, calls = counted(evaluate_request)

        async def main():
            service, client = await started(evaluator=evaluator)
            b1, b2 = await asyncio.gather(
                client.request("sweep", {"samples": 80, "steps": [1, 2]}),
                client.request("sweep", {"samples": 80, "steps": [2, 3]}),
            )
            s1 = await client.request(
                "sweep", {"samples": 80, "steps": [1, 2]}
            )
            s2 = await client.request(
                "sweep", {"samples": 80, "steps": [2, 3]}
            )
            await finish(service, client)
            return b1, b2, s1, s2

        b1, b2, s1, s2 = asyncio.run(main())
        assert len(calls) == 3
        for batched, solo in ((b1, s1), (b2, s2)):
            # the whole payload — including the grid-dependent
            # error_free_step — must match the solo spelling
            assert canonical(batched) == canonical(solo)
        assert b1["result"]["steps"] == [1, 2]
        assert b2["result"]["steps"] == [2, 3]

    def test_members_keep_their_own_ids(self):
        async def main():
            service, client = await started(evaluator=evaluate_request)
            r1, r2 = await asyncio.gather(
                client.request("montecarlo", {"samples": 80, "depths": [2]}),
                client.request("montecarlo", {"samples": 80, "depths": [3]}),
            )
            await finish(service, client)
            return r1, r2

        r1, r2 = asyncio.run(main())
        assert r1["id"] != r2["id"]
        assert r1["result"]["depths"] == [2]
        assert r2["result"]["depths"] == [3]


class TestPerMemberCacheWrites:
    def test_batched_members_cache_under_their_own_keys(self, tmp_path):
        evaluator, calls = counted(evaluate_request)
        config = service_config(
            run_config=BASE.with_(cache_dir=str(tmp_path))
        )

        async def main():
            service, client = await started(config, evaluator=evaluator)
            b1, _ = await asyncio.gather(
                client.request("montecarlo", {"samples": 60,
                                              "depths": [2, 4]}),
                client.request("montecarlo", {"samples": 60, "depths": [3]}),
            )
            # a later solo request must cache-hit exactly as if its
            # member had run alone
            replay = await client.request(
                "montecarlo", {"samples": 60, "depths": [2, 4]}
            )
            await finish(service, client)
            return b1, replay

        b1, replay = asyncio.run(main())
        assert len(calls) == 1  # the replay never reached an evaluator
        assert replay["cached"] is True
        assert canonical(replay) == canonical(b1)


class TestCompatibilityBoundaries:
    def test_incompatible_requests_evaluate_separately(self):
        evaluator, calls = counted(evaluate_request)

        async def main():
            service, client = await started(evaluator=evaluator)
            await asyncio.gather(
                client.request("montecarlo", {"samples": 80, "depths": [2]}),
                client.request("montecarlo", {"samples": 81, "depths": [3]}),
            )
            await finish(service, client)

        asyncio.run(main())
        assert len(calls) == 2

    def test_single_member_window_is_invisible(self):
        metrics().reset()
        evaluator, calls = counted(evaluate_request)

        async def main():
            service, client = await started(evaluator=evaluator)
            resp = await client.request(
                "montecarlo", {"samples": 80, "depths": [2]}
            )
            await finish(service, client)
            return resp

        resp = asyncio.run(main())
        solo = parse("montecarlo", {"samples": 80, "depths": [2]})
        assert calls == [solo.key]  # evaluated under its own key, unmerged
        assert resp["ok"] is True
        assert "service.batched" not in metrics().snapshot()["counters"]

    def test_max_batch_closes_the_window_early(self):
        evaluator, calls = counted(evaluate_request)
        # a 30s window would time the test out unless max_batch fires
        config = service_config(batch_window=30.0, batch_max=2)

        async def main():
            service, client = await started(config, evaluator=evaluator)
            t0 = time.monotonic()
            await asyncio.gather(
                client.request("montecarlo", {"samples": 80, "depths": [2]}),
                client.request("montecarlo", {"samples": 80, "depths": [3]}),
            )
            elapsed = time.monotonic() - t0
            await finish(service, client)
            return elapsed

        elapsed = asyncio.run(main())
        assert len(calls) == 1
        assert elapsed < 10.0


class TestFailureSplitting:
    def test_degraded_fused_evaluation_degrades_each_member(self):
        def broken(req, token):
            raise TransientEvalError("pool down")

        async def main():
            service, client = await started(evaluator=broken)
            r1, r2 = await asyncio.gather(
                client.request("montecarlo", {"samples": 80,
                                              "depths": [2, 4]}),
                client.request("montecarlo", {"samples": 80, "depths": [3]}),
            )
            await finish(service, client)
            return r1, r2

        r1, r2 = asyncio.run(main())
        for resp in (r1, r2):
            assert resp["ok"] is True
            assert resp["degraded"] is True
            assert resp["source"] == "analytical-model"
        # each member's analytical answer covers its *own* grid
        assert [row["depth"] for row in r1["result"]["rows"]] == [2, 4]
        assert [row["depth"] for row in r2["result"]["rows"]] == [3]
        assert r1["id"] != r2["id"]

    def test_deterministic_error_is_copied_per_member(self):
        def explode(req, token):
            raise ValueError("bad geometry")

        async def main():
            service, client = await started(evaluator=explode)
            r1, r2 = await asyncio.gather(
                client.request("montecarlo", {"samples": 80, "depths": [2]}),
                client.request("montecarlo", {"samples": 80, "depths": [3]}),
            )
            await finish(service, client)
            return r1, r2

        r1, r2 = asyncio.run(main())
        for resp in (r1, r2):
            assert resp["ok"] is False
            assert resp["code"] == "error"
            assert "bad geometry" in resp["error"]
        assert r1["id"] != r2["id"]

    def test_drain_aborts_a_gathering_window(self):
        config = service_config(batch_window=30.0)

        async def main():
            service, client = await started(
                config, evaluator=evaluate_request
            )
            pending = asyncio.ensure_future(
                client.request("montecarlo", {"samples": 80, "depths": [2]})
            )
            while service.batcher.depth == 0:
                await asyncio.sleep(0.01)
            await service.drain()
            resp = await pending
            await client.aclose()
            return resp

        resp = asyncio.run(main())
        assert resp["ok"] is False
        assert resp["code"] == "draining"
