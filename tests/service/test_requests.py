"""Request parsing: strict validation onto the experiments' cache keys."""

import pytest

from repro.runners.cache import cache_key
from repro.runners.config import RunConfig
from repro.service.requests import (
    EvalRequest,
    RequestError,
    parse_request,
)
from repro.sim.montecarlo import default_depths, montecarlo_key_components
from repro.sim.sweep import stage_sweep_key_components


BASE = RunConfig(ndigits=4, seed=7, jobs=1, cache_dir=None)


def parse(message, **kwargs):
    return parse_request(message, base_config=BASE, **kwargs)


class TestMonteCarlo:
    def test_key_matches_the_entry_points_cache_key(self):
        req = parse(
            {"kind": "montecarlo", "params": {"samples": 500,
                                              "depths": [2, 4, 6]}}
        )
        expected = cache_key(
            **montecarlo_key_components(BASE, 500, [2, 4, 6])
        )
        assert req.key == expected
        assert req.cache_key == expected  # whole-result cached experiment

    def test_default_depths_mirror_the_entry_point(self):
        req = parse({"kind": "montecarlo", "params": {"samples": 100}})
        assert list(req.params["depths"]) == default_depths(
            BASE.ndigits, BASE.delta
        )

    def test_depth_order_is_normalized_into_the_key(self):
        a = parse({"kind": "montecarlo",
                   "params": {"samples": 100, "depths": [6, 2, 4]}})
        b = parse({"kind": "montecarlo",
                   "params": {"samples": 100, "depths": [2, 4, 6]}})
        assert a.key == b.key

    def test_different_seed_different_key(self):
        a = parse({"kind": "montecarlo", "params": {"samples": 100}})
        b = parse({"kind": "montecarlo",
                   "params": {"samples": 100, "seed": 8}})
        assert a.key != b.key
        assert b.config.seed == 8


class TestSweep:
    def test_key_matches_the_stage_sweep_key(self):
        req = parse({"kind": "sweep",
                     "params": {"samples": 300, "steps": [1, 3, 5]}})
        expected = cache_key(
            **stage_sweep_key_components(BASE, "online", 300, [1, 3, 5])
        )
        assert req.key == expected

    def test_steps_clamp_to_the_settle_depth(self):
        s_tot = BASE.ndigits + BASE.delta
        req = parse({"kind": "sweep",
                     "params": {"samples": 300, "steps": [1, s_tot + 9]}})
        assert max(req.params["steps"]) == s_tot

    def test_periods_and_steps_are_exclusive(self):
        with pytest.raises(RequestError):
            parse({"kind": "sweep",
                   "params": {"samples": 300, "steps": [1],
                              "periods": [0.5]}})


class TestSynthesis:
    def test_normalizes_target(self):
        req = parse({"kind": "synthesis",
                     "params": {"samples": 200, "target_snr": 30.0}})
        assert req.params["target_metric"] == "snr"
        assert req.params["target_value"] == 30.0
        assert req.cache_key is None  # no whole-report cache entry

    def test_both_targets_rejected(self):
        with pytest.raises(RequestError):
            parse({"kind": "synthesis",
                   "params": {"target_mre": 5.0, "target_snr": 30.0}})

    def test_unknown_datapath_rejected(self):
        with pytest.raises(RequestError) as exc_info:
            parse({"kind": "synthesis", "params": {"datapath": "fft"}})
        assert "prodsum" in str(exc_info.value)


class TestValidation:
    @pytest.mark.parametrize(
        "message",
        [
            {"kind": "warp"},
            {"kind": "montecarlo", "params": {"samples": 0}},
            {"kind": "montecarlo", "params": {"samples": "many"}},
            {"kind": "montecarlo", "params": {"depths": []}},
            {"kind": "montecarlo", "params": {"depths": [1, -2]}},
            {"kind": "montecarlo", "params": {"bogus": 1}},
            {"kind": "montecarlo", "params": {"ndigits": 0}},
            {"kind": "montecarlo", "deadline": 0},
            {"kind": "montecarlo", "deadline": -1.0},
            {"kind": "montecarlo", "params": "nope"},
            {"kind": "sweep", "params": {"periods": [0.0]}},
        ],
    )
    def test_rejected(self, message):
        with pytest.raises(RequestError):
            parse(message)

    def test_sample_ceiling_enforced(self):
        with pytest.raises(RequestError) as exc_info:
            parse({"kind": "montecarlo", "params": {"samples": 10_000}},
                  max_samples=5000)
        assert "samples" in str(exc_info.value)

    def test_default_deadline_applies_when_absent(self):
        req = parse({"kind": "montecarlo", "params": {"samples": 10}},
                    default_deadline=12.5)
        assert req.deadline == 12.5
        explicit = parse(
            {"kind": "montecarlo", "params": {"samples": 10},
             "deadline": 3.0},
            default_deadline=12.5,
        )
        assert explicit.deadline == 3.0

    def test_result_is_frozen(self):
        req = parse({"kind": "montecarlo", "params": {"samples": 10}})
        assert isinstance(req, EvalRequest)
        with pytest.raises(AttributeError):
            req.kind = "sweep"
