"""Degraded answers: the analytical model standing in for the pool."""

from repro.core.model.expectation import OverclockingErrorModel
from repro.runners.config import RunConfig
from repro.service.degrade import degraded_answer
from repro.service.requests import parse_request


BASE = RunConfig(ndigits=4, seed=7, jobs=1, cache_dir=None)


def make_request(kind, params):
    return parse_request({"kind": kind, "id": "r1", "params": params},
                         base_config=BASE)


class TestContract:
    def test_marked_degraded_with_reason(self):
        req = make_request("montecarlo", {"samples": 100, "depths": [4, 6]})
        resp = degraded_answer(req, "breaker open (pool down)")
        assert resp["ok"] is True  # degraded, but *answered*
        assert resp["degraded"] is True
        assert resp["degraded_reason"] == "breaker open (pool down)"
        assert resp["source"] == "analytical-model"
        assert resp["id"] == "r1"
        assert resp["key"] == req.key


class TestMonteCarlo:
    def test_rows_match_the_expectation_model(self):
        req = make_request("montecarlo", {"samples": 100, "depths": [4, 6]})
        resp = degraded_answer(req, "x")
        model = OverclockingErrorModel(BASE.ndigits, BASE.delta)
        rows = resp["result"]["rows"]
        assert [r["depth"] for r in rows] == [4, 6]
        for row in rows:
            assert row["mean_abs_error"] == model.expected_error(row["depth"])
            assert row["violation_probability"] == \
                model.violation_probability(row["depth"])

    def test_error_decreases_with_depth(self):
        depths = [4, 5, 6, 7]
        req = make_request("montecarlo", {"samples": 100, "depths": depths})
        errors = [r["mean_abs_error"]
                  for r in degraded_answer(req, "x")["result"]["rows"]]
        assert errors == sorted(errors, reverse=True)

    def test_domain_clamping(self):
        # b <= delta: certain violation at MSD magnitude;
        # b >= settle depth: no overclocking error at all
        s_tot = BASE.ndigits + BASE.delta
        req = make_request(
            "montecarlo", {"samples": 100, "depths": [1, s_tot]}
        )
        rows = degraded_answer(req, "x")["result"]["rows"]
        assert rows[0]["violation_probability"] == 1.0
        assert rows[1]["mean_abs_error"] == 0.0
        assert rows[1]["violation_probability"] == 0.0


class TestSweep:
    def test_rows_over_the_step_grid(self):
        req = make_request("sweep", {"samples": 100, "steps": [4, 6]})
        result = degraded_answer(req, "x")["result"]
        assert result["design"] == "online"
        assert [r["depth"] for r in result["rows"]] == [4, 6]


class TestSynthesis:
    def test_answers_with_an_unverified_candidate(self):
        req = make_request(
            "synthesis",
            {"samples": 100, "datapath": "prodsum", "target_mre": 50.0},
        )
        result = degraded_answer(req, "x")["result"]
        assert result["verified"] is False
        assert result["num_candidates"] > 0
        best = result["best"]
        assert best is not None
        assert best["meets_target"] is True
        # the winner is the smallest-latency candidate that meets target
        assert best["predicted_mre_percent"] <= 50.0

    def test_infeasible_target_answers_honestly(self):
        req = make_request(
            "synthesis",
            {"samples": 100, "datapath": "prodsum", "target_snr": 1e6},
        )
        result = degraded_answer(req, "x")["result"]
        assert result["best"] is None
        assert result["num_meeting_target"] == 0
