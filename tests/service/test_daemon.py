"""End-to-end daemon tests: socket round trips, coalescing, shedding,
breaker/degraded answers, deadlines and graceful drain.

No pytest-asyncio here by design — each test drives its own event loop
with ``asyncio.run``, which also guarantees the daemon's lifecycle is
exercised from a cold loop every time (exactly how ``repro serve``
runs it).  Evaluators are injected: these tests exercise the *service*
semantics; the real evaluator is covered by the round-trip test and
the integration suite.
"""

import asyncio
import threading
import time

from repro.obs.metrics import metrics
from repro.runners.config import RunConfig
from repro.runners.parallel import RunCancelled
from repro.service import (
    EvalService,
    ServiceClient,
    ServiceConfig,
    TransientEvalError,
)
from repro.service.retry import RetryPolicy


BASE = RunConfig(ndigits=3, seed=7, jobs=1, cache_dir=None)
FAST_RETRY = RetryPolicy(base=0.005, cap=0.01, budget=0.03, max_attempts=3)


def service_config(**overrides):
    kwargs = dict(
        run_config=BASE,
        concurrency=2,
        retry=FAST_RETRY,
        failure_threshold=2,
        reset_timeout=0.2,
        drain_timeout=2.0,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


async def started(config=None, evaluator=None):
    service = EvalService(config or service_config(), evaluator=evaluator)
    await service.start()
    client = await ServiceClient.connect("127.0.0.1", service.port)
    return service, client


async def finish(service, client):
    await client.aclose()
    await service.drain()


def cooperative_slow(duration):
    """An evaluator that honors the runner cancel token."""

    def evaluate(req, token):
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            if token.cancelled:
                raise RunCancelled(token.reason or "cancelled")
            time.sleep(0.01)
        return {"slept": duration}

    return evaluate


class TestRoundTrip:
    def test_real_montecarlo_over_the_socket(self):
        async def main():
            service, client = await started()
            resp = await client.request(
                "montecarlo", {"samples": 80, "depths": [2, 4]}
            )
            await finish(service, client)
            return resp

        resp = asyncio.run(main())
        assert resp["ok"] is True
        assert resp["kind"] == "montecarlo"
        assert resp["result"]["depths"] == [2, 4]
        assert len(resp["result"]["mean_abs_error"]) == 2
        assert "degraded" not in resp

    def test_health_endpoints(self):
        async def main():
            service, client = await started()
            health = await client.request("healthz")
            ready = await client.request("readyz")
            stats = await client.request("stats")
            await finish(service, client)
            return health, ready, stats

        health, ready, stats = asyncio.run(main())
        assert health["ok"] and health["status"] == "alive"
        assert ready["ok"] and ready["status"] == "ready"
        assert stats["breaker"] == "closed"
        assert stats["queue_depth"] == 0

    def test_bad_requests_answered_not_dropped(self):
        async def main():
            service, client = await started()
            unknown = await client.request("teleport")
            bad_param = await client.request(
                "montecarlo", {"samples": 10, "bogus": 1}
            )
            await finish(service, client)
            return unknown, bad_param

        unknown, bad_param = asyncio.run(main())
        assert unknown == {
            "ok": False, "code": "bad_request", "id": unknown["id"],
            "error": unknown["error"],
        }
        assert "bogus" in bad_param["error"]


class TestCoalescing:
    def test_n_identical_concurrent_requests_one_evaluation(self):
        metrics().reset()
        evaluations = []
        release = threading.Event()

        def evaluate(req, token):
            evaluations.append(req.key)
            release.wait(timeout=5.0)
            return {"value": 42}

        async def main():
            service, client = await started(evaluator=evaluate)
            tasks = [
                asyncio.ensure_future(
                    client.request("montecarlo",
                                   {"samples": 100, "depths": [3]})
                )
                for _ in range(8)
            ]
            # let every request reach the coalescer before releasing
            while len(evaluations) == 0 or service.coalescer.depth == 0:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            release.set()
            responses = await asyncio.gather(*tasks)
            await finish(service, client)
            return responses

        responses = asyncio.run(main())
        assert len(evaluations) == 1  # exactly one pool evaluation
        assert all(r["ok"] and r["result"]["value"] == 42 for r in responses)
        assert sum(r.get("coalesced", False) for r in responses) == 7
        counters = metrics().snapshot()["counters"]
        assert counters["service.coalesce_hits"] == 7

    def test_distinct_requests_do_not_coalesce(self):
        evaluations = []

        def evaluate(req, token):
            evaluations.append(req.key)
            return {"ok": 1}

        async def main():
            service, client = await started(evaluator=evaluate)
            await asyncio.gather(
                client.request("montecarlo", {"samples": 100, "depths": [3]}),
                client.request("montecarlo", {"samples": 101, "depths": [3]}),
            )
            await finish(service, client)

        asyncio.run(main())
        assert len(evaluations) == 2
        assert evaluations[0] != evaluations[1]

    def test_followers_get_their_own_request_id(self):
        release = threading.Event()

        def evaluate(req, token):
            release.wait(timeout=5.0)
            return {"v": 1}

        async def main():
            service, client = await started(evaluator=evaluate)
            t1 = asyncio.ensure_future(
                client.request("montecarlo", {"samples": 100, "depths": [3]})
            )
            t2 = asyncio.ensure_future(
                client.request("montecarlo", {"samples": 100, "depths": [3]})
            )
            await asyncio.sleep(0.1)
            release.set()
            r1, r2 = await asyncio.gather(t1, t2)
            await finish(service, client)
            return r1, r2

        r1, r2 = asyncio.run(main())
        assert r1["id"] != r2["id"]  # correlation survives coalescing


class TestCacheShortCircuit:
    def test_cached_result_answers_without_evaluating(self, tmp_path):
        evaluations = []

        def evaluate(req, token):
            evaluations.append(req.key)
            return {"v": 7}

        config = service_config(
            run_config=BASE.with_(cache_dir=str(tmp_path))
        )

        async def main():
            service, client = await started(config)
            # the real evaluator populates the persistent cache
            first = await client.request(
                "montecarlo", {"samples": 60, "depths": [2]}
            )
            service.evaluator = evaluate
            second = await client.request(
                "montecarlo", {"samples": 60, "depths": [2]}
            )
            await finish(service, client)
            return first, second

        first, second = asyncio.run(main())
        assert first["ok"] and "cached" not in first
        assert second["ok"] and second["cached"] is True
        assert second["result"]["mean_abs_error"] == \
            first["result"]["mean_abs_error"]
        assert evaluations == []  # cache answered before the queue


class TestShedding:
    def test_saturated_class_sheds_with_retry_after(self):
        metrics().reset()
        release = threading.Event()

        def evaluate(req, token):
            release.wait(timeout=5.0)
            return {"v": 1}

        config = service_config(limits={"montecarlo": 1, "sweep": 1,
                                        "synthesis": 1})

        async def main():
            service, client = await started(config, evaluator=evaluate)
            leader = asyncio.ensure_future(
                client.request("montecarlo", {"samples": 100, "depths": [3]})
            )
            while service.admission.depth("montecarlo") == 0:
                await asyncio.sleep(0.01)
            shed = await client.request(
                "montecarlo", {"samples": 999, "depths": [3]}
            )
            release.set()
            await leader
            await finish(service, client)
            return shed

        shed = asyncio.run(main())
        assert shed["ok"] is False
        assert shed["code"] == "shed"
        assert shed["retry_after"] > 0
        assert "queue full" in shed["error"]
        assert metrics().snapshot()["counters"]["service.shed"] == 1


class TestBreakerAndDegradation:
    def test_pool_down_still_answers_every_request(self):
        metrics().reset()

        def broken(req, token):
            raise TransientEvalError("worker exploded")

        async def main():
            service, client = await started(evaluator=broken)
            responses = []
            for i in range(5):
                responses.append(await client.request(
                    "montecarlo", {"samples": 100 + i, "depths": [4]}
                ))
            state = service.breaker.state
            await finish(service, client)
            return responses, state

        responses, state = asyncio.run(main())
        assert state == "open"
        # every request answered, all via the analytical degraded path
        assert all(r["ok"] for r in responses)
        assert all(r["degraded"] for r in responses)
        # first two paid the retry schedule and tripped the breaker;
        # the rest short-circuited on the open breaker
        counters = metrics().snapshot()["counters"]
        assert counters["service.breaker.opened"] == 1
        assert counters["service.pool_exhausted"] == 2
        assert counters["service.degraded"] == 5
        assert counters["service.retries"] == 2 * 2  # 2 retries x 2 requests

    def test_half_open_probe_restores_service(self):
        calls = {"n": 0}

        def flaky_then_fixed(req, token):
            calls["n"] += 1
            if calls["n"] <= 6:  # 2 requests x 3 attempts all fail
                raise TransientEvalError("still down")
            return {"v": "recovered"}

        async def main():
            service, client = await started(evaluator=flaky_then_fixed)
            for i in range(2):
                r = await client.request(
                    "montecarlo", {"samples": 200 + i, "depths": [4]}
                )
                assert r["degraded"]
            assert service.breaker.state == "open"
            await asyncio.sleep(0.25)  # past reset_timeout
            probe = await client.request(
                "montecarlo", {"samples": 300, "depths": [4]}
            )
            state = service.breaker.state
            await finish(service, client)
            return probe, state

        probe, state = asyncio.run(main())
        assert probe["ok"] is True
        assert "degraded" not in probe
        assert probe["result"]["v"] == "recovered"
        assert state == "closed"

    def test_degraded_montecarlo_answer_has_model_rows(self):
        def broken(req, token):
            raise TransientEvalError("down")

        config = service_config(failure_threshold=1)

        async def main():
            service, client = await started(config, evaluator=broken)
            r = await client.request(
                "montecarlo", {"samples": 100, "depths": [4, 6]}
            )
            await finish(service, client)
            return r

        r = asyncio.run(main())
        assert r["degraded"] is True
        assert r["source"] == "analytical-model"
        rows = r["result"]["rows"]
        assert [row["depth"] for row in rows] == [4, 6]
        assert rows[0]["mean_abs_error"] >= rows[1]["mean_abs_error"]


class TestLeaderFailure:
    def test_dying_leader_resolves_its_followers(self):
        """A leader killed by an unexpected (non-evaluation) exception
        must still resolve the coalescer entry — followers get an
        honest ``internal`` response instead of hanging until their
        client-side timeout."""

        async def main():
            service, client = await started()
            release = asyncio.Event()

            async def crashing_leader(req):
                await release.wait()
                raise RuntimeError("handler bug, not an evaluation error")

            service._evaluate_leader = crashing_leader
            tasks = [
                asyncio.ensure_future(
                    client.request(
                        "montecarlo", {"samples": 100, "depths": [3]},
                        timeout=5.0,
                    )
                )
                for _ in range(3)
            ]
            # wait for one leader plus two parked followers
            while service.coalescer.depth == 0:
                await asyncio.sleep(0.01)
            await asyncio.sleep(0.05)
            release.set()
            responses = await asyncio.gather(*tasks)
            depth = service.coalescer.depth
            await finish(service, client)
            return responses, depth

        responses, depth = asyncio.run(main())
        assert all(r["ok"] is False for r in responses)
        assert all(r["code"] == "internal" for r in responses)
        assert depth == 0  # nothing stranded in the coalescer


class TestDeadline:
    def test_deadline_cancels_into_the_runner(self):
        async def main():
            service, client = await started(
                evaluator=cooperative_slow(10.0)
            )
            t0 = time.monotonic()
            r = await client.request(
                "montecarlo", {"samples": 100, "depths": [4]}, deadline=0.2
            )
            elapsed = time.monotonic() - t0
            await finish(service, client)
            return r, elapsed

        r, elapsed = asyncio.run(main())
        assert r["ok"] is False
        assert r["code"] == "deadline"
        assert elapsed < 5.0  # nowhere near the evaluator's 10s

    def test_fast_request_beats_its_deadline(self):
        async def main():
            service, client = await started(evaluator=lambda r, t: {"v": 1})
            r = await client.request(
                "montecarlo", {"samples": 100, "depths": [4]}, deadline=30.0
            )
            await finish(service, client)
            return r

        r = asyncio.run(main())
        assert r["ok"] is True


class TestDrain:
    def test_drain_finishes_inflight_then_rejects(self):
        release = threading.Event()

        def evaluate(req, token):
            release.wait(timeout=5.0)
            return {"v": "done"}

        async def main():
            service, client = await started(evaluator=evaluate)
            inflight = asyncio.ensure_future(
                client.request("montecarlo", {"samples": 100, "depths": [3]})
            )
            while service.admission.depth() == 0:
                await asyncio.sleep(0.01)
            drain_task = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.05)
            release.set()
            inflight_resp = await inflight
            await drain_task
            late = await service.handle(
                {"kind": "montecarlo", "params": {"samples": 10}}
            )
            ready = service._admin({"kind": "readyz"})
            await client.aclose()
            return inflight_resp, late, ready

        inflight_resp, late, ready = asyncio.run(main())
        assert inflight_resp["ok"] is True  # in-flight work completed
        assert inflight_resp["result"]["v"] == "done"
        assert late["code"] == "draining"
        assert ready["ok"] is False and ready["draining"] is True

    def test_drain_is_idempotent(self):
        async def main():
            service, client = await started()
            await service.drain()
            await service.drain()
            await client.aclose()

        asyncio.run(main())
