"""Live progress streaming: frames to leaders and coalesced followers,
the ``statsz``/``metricsz`` admin verbs, and healthz drain visibility.

Same no-pytest-asyncio idiom as ``test_daemon.py``: every test drives a
cold event loop through ``asyncio.run``.
"""

import asyncio
import threading
import time

from repro.obs.events import ProgressReporter
from repro.runners.config import RunConfig
from repro.service import EvalService, ServiceClient, ServiceConfig
from repro.service.client import request_once
from repro.service.retry import RetryPolicy

BASE = RunConfig(ndigits=3, seed=7, jobs=1, cache_dir=None)
FAST_RETRY = RetryPolicy(base=0.005, cap=0.01, budget=0.03, max_attempts=3)


def service_config(**overrides):
    kwargs = dict(
        run_config=BASE,
        concurrency=2,
        retry=FAST_RETRY,
        failure_threshold=2,
        reset_timeout=0.2,
        drain_timeout=2.0,
    )
    kwargs.update(overrides)
    return ServiceConfig(**kwargs)


async def started(config=None, evaluator=None):
    service = EvalService(config or service_config(), evaluator=evaluator)
    await service.start()
    client = await ServiceClient.connect("127.0.0.1", service.port)
    return service, client


async def finish(service, client):
    await client.aclose()
    await service.drain()


def streaming_evaluator(num_shards=4, pause=0.03):
    """Publishes shard progress on the global bus the way the runner does."""

    def evaluate(req, token):
        reporter = ProgressReporter(experiment=req.kind, run_id=req.key)
        reporter.begin(num_shards, num_shards * 10)
        for shard in range(num_shards):
            reporter.shard_queued(shard, 10)
        for shard in range(num_shards):
            reporter.shard_started(shard, 10)
            time.sleep(pause)
            reporter.shard_completed(shard, 10, elapsed=pause)
        return {"shards": num_shards}

    return evaluate


class TestLeaderStreaming:
    def test_real_montecarlo_streams_before_final(self):
        # the full path: evaluate_request attaches the reporter, the
        # runner publishes, the daemon hops frames onto the loop
        frames = []
        config = service_config(
            run_config=BASE.with_(shard_size=50)  # 400 samples -> 8 shards
        )

        async def main():
            service, client = await started(config)
            resp = await client.request(
                "montecarlo",
                {"samples": 400, "depths": [2]},
                on_progress=frames.append,
            )
            await finish(service, client)
            return resp

        resp = asyncio.run(main())
        assert resp["ok"] is True
        assert len(frames) >= 1  # at least one frame before the final
        assert all(f["event"] == "progress" for f in frames)
        assert all(f["id"] == resp["id"] for f in frames)
        done = [f["shards_done"] for f in frames]
        assert done == sorted(done)  # monotonically non-decreasing
        assert frames[-1]["shards_total"] == 8
        seqs = [f["seq"] for f in frames]
        assert seqs == sorted(seqs)

    def test_frames_carry_eta_after_first_completion(self):
        frames = []

        async def main():
            service, client = await started(
                evaluator=streaming_evaluator(num_shards=3)
            )
            resp = await client.request(
                "montecarlo", {"samples": 100, "depths": [2]},
                on_progress=frames.append,
            )
            await finish(service, client)
            return resp

        resp = asyncio.run(main())
        assert resp["ok"] is True
        completed = [f for f in frames if f["transition"] == "completed"]
        assert completed, "no completed transitions streamed"
        assert completed[-1]["eta_s"] is not None
        assert completed[-1]["samples_done"] == 30

    def test_no_handler_still_gets_final_response(self):
        async def main():
            service, client = await started(
                evaluator=streaming_evaluator(num_shards=2)
            )
            resp = await client.request(
                "montecarlo", {"samples": 100, "depths": [2]}
            )
            await finish(service, client)
            return resp

        resp = asyncio.run(main())
        assert resp["ok"] is True  # frames consumed and dropped silently


class TestFollowerStreaming:
    def test_coalesced_follower_receives_frames(self):
        leader_frames, follower_frames = [], []
        params = {"samples": 100, "depths": [2]}

        async def main():
            service, client = await started(
                evaluator=streaming_evaluator(num_shards=6, pause=0.05)
            )
            leader = asyncio.ensure_future(
                client.request(
                    "montecarlo", params, on_progress=leader_frames.append
                )
            )
            # join once the leader is actually in flight
            while service.coalescer.depth == 0:
                await asyncio.sleep(0.005)
            follower = asyncio.ensure_future(
                client.request(
                    "montecarlo", params, on_progress=follower_frames.append
                )
            )
            leader_resp, follower_resp = await asyncio.gather(
                leader, follower
            )
            await finish(service, client)
            return leader_resp, follower_resp

        leader_resp, follower_resp = asyncio.run(main())
        assert leader_resp["ok"] and follower_resp["ok"]
        assert follower_resp.get("coalesced") is True
        assert len(leader_frames) >= 1
        assert len(follower_frames) >= 1
        # every frame is addressed to its own request id
        leader_ids = {f["id"] for f in leader_frames}
        follower_ids = {f["id"] for f in follower_frames}
        assert leader_ids == {leader_resp["id"]}
        assert follower_ids == {follower_resp["id"]}
        done = [f["shards_done"] for f in follower_frames]
        assert done == sorted(done)


class TestStatsz:
    def test_statsz_shape(self):
        async def main():
            service, client = await started()
            await client.request("montecarlo", {"samples": 50, "depths": [2]})
            statsz = await client.request("statsz")
            await finish(service, client)
            return statsz

        statsz = asyncio.run(main())
        assert statsz["ok"] is True
        assert statsz["draining"] is False
        assert statsz["breaker"] == "closed"
        assert statsz["queue_depth"] == 0
        assert statsz["queue_depths"] == {
            "montecarlo": 0, "sweep": 0, "synthesis": 0,
        }
        assert statsz["inflight_keys"] == 0
        # the metrics view is the deterministic one: no gauges section
        assert "gauges" not in statsz["metrics"]
        assert statsz["metrics"]["counters"]["service.requests"] >= 1

    def test_statsz_exposes_inflight_progress(self):
        async def main():
            service, client = await started(
                evaluator=streaming_evaluator(num_shards=8, pause=0.05)
            )
            inflight = asyncio.ensure_future(
                client.request("montecarlo", {"samples": 100, "depths": [2]})
            )
            progress = {}
            for _ in range(200):
                statsz = await client.request("statsz")
                if statsz["progress"]:
                    progress = statsz["progress"]
                    break
                await asyncio.sleep(0.01)
            resp = await inflight
            after = await client.request("statsz")
            await finish(service, client)
            return progress, resp, after

        progress, resp, after = asyncio.run(main())
        assert resp["ok"] is True
        assert progress, "statsz never showed the in-flight run"
        [(key, snap)] = list(progress.items())
        assert key == resp["key"]
        assert snap["shards_total"] == 8
        assert snap["experiment"] == "montecarlo"
        assert after["progress"] == {}  # cleaned up after completion

    def test_metricsz_renders_prometheus(self):
        async def main():
            service, client = await started()
            await client.request("montecarlo", {"samples": 50, "depths": [2]})
            metricsz = await client.request("metricsz")
            await finish(service, client)
            return metricsz

        metricsz = asyncio.run(main())
        assert metricsz["ok"] is True
        assert metricsz["content_type"].startswith("text/plain")
        body = metricsz["body"]
        assert "# TYPE repro_service_requests_total counter" in body
        assert body.endswith("\n")

    def test_request_once_supports_admin_verbs(self):
        # the sync convenience the CLI uses: drive it from a worker
        # thread against a daemon living on the main thread's loop
        results = {}

        async def main():
            service, client = await started()

            def sync_calls():
                results["statsz"] = request_once(
                    "127.0.0.1", service.port, "statsz", timeout=5.0
                )
                results["healthz"] = request_once(
                    "127.0.0.1", service.port, "healthz", timeout=5.0
                )

            await asyncio.get_running_loop().run_in_executor(
                None, sync_calls
            )
            await finish(service, client)

        asyncio.run(main())
        assert results["statsz"]["ok"] is True
        assert "queue_depths" in results["statsz"]
        assert results["healthz"]["ok"] is True


class TestHealthzDraining:
    def test_healthz_reports_draining(self):
        release = threading.Event()

        def evaluate(req, token):
            release.wait(timeout=5.0)
            return {"v": "done"}

        async def main():
            service, client = await started(evaluator=evaluate)
            healthy = service._admin({"kind": "healthz"})
            inflight = asyncio.ensure_future(
                client.request("montecarlo", {"samples": 100, "depths": [3]})
            )
            while service.admission.depth() == 0:
                await asyncio.sleep(0.01)
            drain_task = asyncio.ensure_future(service.drain())
            await asyncio.sleep(0.05)
            draining = service._admin({"kind": "healthz"})
            ready = service._admin({"kind": "readyz"})
            release.set()
            await inflight
            await drain_task
            await client.aclose()
            return healthy, draining, ready

        healthy, draining, ready = asyncio.run(main())
        assert healthy["ok"] is True and healthy["draining"] is False
        # alive-but-draining: load balancers stop routing, the process
        # is not restarted
        assert draining["ok"] is True and draining["draining"] is True
        assert ready["ok"] is False and ready["draining"] is True
