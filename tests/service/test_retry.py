"""Property tests for the retry policy — all in virtual time.

The two documented invariants (every delay in ``[base, cap]``; the sum
of delays never exceeds ``budget``) are checked over a wide random
policy space, not just the defaults.
"""

import asyncio
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.retry import RetryPolicy


policies = st.builds(
    RetryPolicy,
    base=st.floats(0.001, 1.0),
    cap=st.floats(1.0, 30.0),
    budget=st.floats(0.0, 60.0),
    max_attempts=st.integers(1, 12),
)


class TestScheduleInvariants:
    @settings(max_examples=200, deadline=None)
    @given(policies, st.integers(0, 2**32 - 1))
    def test_delays_within_base_cap(self, policy, seed):
        for delay in policy.delays(random.Random(seed)):
            assert policy.base <= delay <= policy.cap

    @settings(max_examples=200, deadline=None)
    @given(policies, st.integers(0, 2**32 - 1))
    def test_total_never_exceeds_budget(self, policy, seed):
        total = sum(policy.delays(random.Random(seed)))
        assert total <= policy.budget + 1e-12

    @settings(max_examples=100, deadline=None)
    @given(policies, st.integers(0, 2**32 - 1))
    def test_at_most_max_attempts_minus_one_delays(self, policy, seed):
        delays = list(policy.delays(random.Random(seed)))
        assert len(delays) <= policy.max_attempts - 1

    def test_deterministic_given_rng(self):
        policy = RetryPolicy(base=0.1, cap=5.0, budget=20.0, max_attempts=8)
        a = list(policy.delays(random.Random(42)))
        b = list(policy.delays(random.Random(42)))
        assert a == b and a  # same seed, same schedule, non-empty

    def test_zero_budget_means_no_retries(self):
        policy = RetryPolicy(base=0.1, cap=1.0, budget=0.0, max_attempts=5)
        assert list(policy.delays(random.Random(0))) == []


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base": 0.0},
            {"base": -1.0},
            {"base": 2.0, "cap": 1.0},
            {"budget": -0.1},
            {"max_attempts": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCall:
    def _flaky(self, failures, exc=OSError):
        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            if state["calls"] <= failures:
                raise exc("transient")
            return "ok"

        return fn, state

    def test_retries_then_succeeds_in_virtual_time(self):
        slept = []
        policy = RetryPolicy(base=0.1, cap=1.0, budget=10.0, max_attempts=5)
        fn, state = self._flaky(failures=3)
        result = policy.call(
            fn, retry_on=(OSError,), sleep=slept.append,
            rng=random.Random(1),
        )
        assert result == "ok"
        assert state["calls"] == 4
        assert len(slept) == 3
        assert all(policy.base <= d <= policy.cap for d in slept)

    def test_reraises_when_schedule_exhausted(self):
        slept = []
        policy = RetryPolicy(base=0.1, cap=1.0, budget=10.0, max_attempts=3)
        fn, state = self._flaky(failures=99)
        with pytest.raises(OSError):
            policy.call(fn, retry_on=(OSError,), sleep=slept.append,
                        rng=random.Random(1))
        assert state["calls"] == 3  # initial + 2 retries
        assert sum(slept) <= policy.budget

    def test_non_matching_exception_not_retried(self):
        policy = RetryPolicy(max_attempts=5)
        calls = []

        def fn():
            calls.append(1)
            raise ValueError("deterministic")

        with pytest.raises(ValueError):
            policy.call(fn, retry_on=(OSError,), sleep=lambda d: None)
        assert len(calls) == 1

    def test_on_retry_callback_sees_attempts_and_delays(self):
        policy = RetryPolicy(base=0.1, cap=1.0, budget=10.0, max_attempts=4)
        seen = []
        fn, _ = self._flaky(failures=2)
        policy.call(
            fn, retry_on=(OSError,), sleep=lambda d: None,
            rng=random.Random(3),
            on_retry=lambda attempt, delay, exc: seen.append(
                (attempt, type(exc).__name__)
            ),
        )
        assert seen == [(1, "OSError"), (2, "OSError")]

    @settings(max_examples=50, deadline=None)
    @given(policies, st.integers(0, 2**32 - 1))
    def test_call_sleep_total_bounded_by_budget(self, policy, seed):
        slept = []

        def always_fail():
            raise OSError("down")

        with pytest.raises(OSError):
            policy.call(always_fail, retry_on=(OSError,),
                        sleep=slept.append, rng=random.Random(seed))
        assert sum(slept) <= policy.budget + 1e-12


class TestAcall:
    def test_async_retries_with_fake_sleep(self):
        policy = RetryPolicy(base=0.05, cap=0.5, budget=5.0, max_attempts=4)
        slept = []
        state = {"calls": 0}

        async def fake_sleep(delay):
            slept.append(delay)

        async def fn():
            state["calls"] += 1
            if state["calls"] <= 2:
                raise OSError("transient")
            return 99

        result = asyncio.run(
            policy.acall(fn, retry_on=(OSError,), sleep=fake_sleep,
                         rng=random.Random(5))
        )
        assert result == 99
        assert state["calls"] == 3
        assert len(slept) == 2
        assert all(policy.base <= d <= policy.cap for d in slept)

    def test_async_reraises_when_exhausted(self):
        policy = RetryPolicy(base=0.05, cap=0.5, budget=5.0, max_attempts=2)

        async def fake_sleep(delay):
            pass

        async def fn():
            raise OSError("still down")

        with pytest.raises(OSError):
            asyncio.run(
                policy.acall(fn, retry_on=(OSError,), sleep=fake_sleep,
                             rng=random.Random(5))
            )
