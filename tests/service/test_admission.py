"""Admission control: bounded occupancy, shedding, retry-after hints."""

import pytest

from repro.obs.metrics import metrics
from repro.service.admission import AdmissionController, ShedRequest


class TestLimits:
    def test_admits_up_to_the_class_limit(self):
        adm = AdmissionController(limits={"montecarlo": 2, "sweep": 2})
        adm.try_acquire("montecarlo")
        adm.try_acquire("montecarlo")
        with pytest.raises(ShedRequest) as exc_info:
            adm.try_acquire("montecarlo")
        assert "queue full" in exc_info.value.reason
        assert exc_info.value.retry_after > 0

    def test_classes_are_isolated(self):
        adm = AdmissionController(limits={"montecarlo": 1, "sweep": 1})
        adm.try_acquire("montecarlo")
        adm.try_acquire("sweep")  # full montecarlo queue does not block sweep

    def test_total_limit_caps_across_classes(self):
        adm = AdmissionController(
            limits={"montecarlo": 4, "sweep": 4}, total=2
        )
        adm.try_acquire("montecarlo")
        adm.try_acquire("sweep")
        with pytest.raises(ShedRequest) as exc_info:
            adm.try_acquire("montecarlo")
        assert "saturated" in exc_info.value.reason

    def test_release_reopens_the_slot(self):
        adm = AdmissionController(limits={"montecarlo": 1})
        adm.try_acquire("montecarlo")
        adm.release("montecarlo", service_time=0.5)
        adm.try_acquire("montecarlo")  # no raise

    def test_release_without_acquire_is_a_bug(self):
        adm = AdmissionController(limits={"montecarlo": 1})
        with pytest.raises(RuntimeError):
            adm.release("montecarlo")

    def test_unknown_class_rejected(self):
        adm = AdmissionController(limits={"montecarlo": 1})
        with pytest.raises(ValueError):
            adm.try_acquire("mystery")

    def test_unknown_class_rejected_everywhere(self):
        # every entry point names the offending class instead of leaking
        # a bare KeyError out of the counter dict
        adm = AdmissionController(limits={"montecarlo": 1})
        for call in (adm.try_acquire, adm.release, adm.retry_after,
                     adm.depth):
            with pytest.raises(ValueError, match="unknown request class"):
                call("mystery")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"limits": {"montecarlo": 0}},
            {"concurrency": 0},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionController(**kwargs)


class TestRetryAfter:
    def test_ewma_folds_observed_service_times(self):
        adm = AdmissionController(
            limits={"montecarlo": 8}, initial_service_time=1.0
        )
        adm.try_acquire("montecarlo")
        adm.release("montecarlo", service_time=3.0)
        # 0.8 * 1.0 + 0.2 * 3.0
        assert adm.service_time_estimate == pytest.approx(1.4)

    def test_retry_after_grows_with_queue_depth(self):
        adm = AdmissionController(
            limits={"montecarlo": 8}, concurrency=2,
            initial_service_time=1.0,
        )
        empty = adm.retry_after("montecarlo")
        for _ in range(4):
            adm.try_acquire("montecarlo")
        assert adm.retry_after("montecarlo") > empty

    def test_retry_after_never_below_one_service_time(self):
        adm = AdmissionController(
            limits={"montecarlo": 8}, concurrency=16,
            initial_service_time=2.0,
        )
        assert adm.retry_after("montecarlo") >= 2.0

    def test_shed_carries_a_live_hint(self):
        adm = AdmissionController(
            limits={"montecarlo": 1}, concurrency=1,
            initial_service_time=0.5,
        )
        adm.try_acquire("montecarlo")
        with pytest.raises(ShedRequest) as exc_info:
            adm.try_acquire("montecarlo")
        # one request ahead on one worker: at least one service time out
        assert exc_info.value.retry_after >= 0.5

    def test_class_shed_hint_counts_the_class_queue_not_the_total(self):
        # a montecarlo shed waits on montecarlo's 2 pending requests, not
        # on sweep's 6 — the classes drain independently
        adm = AdmissionController(
            limits={"montecarlo": 2, "sweep": 8}, concurrency=1,
            initial_service_time=1.0,
        )
        for _ in range(6):
            adm.try_acquire("sweep")
        for _ in range(2):
            adm.try_acquire("montecarlo")
        with pytest.raises(ShedRequest) as exc_info:
            adm.try_acquire("montecarlo")
        assert exc_info.value.retry_after == pytest.approx(3.0)  # (2+1)/1
        assert adm.retry_after("montecarlo") == pytest.approx(3.0)

    def test_saturation_shed_hint_counts_the_total(self):
        adm = AdmissionController(
            limits={"montecarlo": 8, "sweep": 8}, total=4, concurrency=1,
            initial_service_time=1.0,
        )
        for _ in range(3):
            adm.try_acquire("sweep")
        adm.try_acquire("montecarlo")
        with pytest.raises(ShedRequest) as exc_info:
            adm.try_acquire("montecarlo")
        assert "saturated" in exc_info.value.reason
        assert exc_info.value.retry_after == pytest.approx(5.0)  # (4+1)/1


class TestObservability:
    def test_depth_and_gauges_track_occupancy(self):
        metrics().reset()
        adm = AdmissionController(limits={"montecarlo": 4, "sweep": 4})
        adm.try_acquire("montecarlo")
        adm.try_acquire("sweep")
        assert adm.depth() == 2
        assert adm.depth("sweep") == 1
        gauges = metrics().snapshot()["gauges"]
        assert gauges["service.queue_depth"] == 2.0
        assert gauges["service.queue_depth.montecarlo"] == 1.0
        adm.release("sweep")
        gauges = metrics().snapshot()["gauges"]
        assert gauges["service.queue_depth"] == 1.0

    def test_shed_counter(self):
        metrics().reset()
        adm = AdmissionController(limits={"montecarlo": 1})
        adm.try_acquire("montecarlo")
        for _ in range(3):
            with pytest.raises(ShedRequest):
                adm.try_acquire("montecarlo")
        assert metrics().snapshot()["counters"]["service.shed"] == 3
