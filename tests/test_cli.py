"""Tests for the repro-overclock command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["model"])
        assert args.ndigits == 8
        assert args.samples == 20000

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_chains(self, capsys):
        assert main(["chains", "--ndigits", "6"]) == 0
        out = capsys.readouterr().out
        assert "chain delay" in out
        assert "P_d" in out

    def test_model_small(self, capsys):
        assert main(["model", "--ndigits", "6", "--samples", "500"]) == 0
        out = capsys.readouterr().out
        assert "model vs Monte-Carlo" in out

    def test_model_calibrated(self, capsys):
        assert main(
            ["model", "--ndigits", "6", "--samples", "500", "--calibrate"]
        ) == 0
        assert "calibrated kappa" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area", "--ndigits", "6"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_multiplier_small(self, capsys):
        assert main(
            ["multiplier", "--ndigits", "4", "--samples", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "error-free period" in out

    def test_filter_tiny(self, capsys):
        assert main(["filter", "--image", "lena", "--size", "12"]) == 0
        out = capsys.readouterr().out
        assert "online SNR" in out

    def test_verilog_stdout(self, capsys):
        assert main(["verilog", "--what", "rca", "--ndigits", "4"]) == 0
        out = capsys.readouterr().out
        assert "module rca4" in out
        assert "endmodule" in out

    def test_verilog_file(self, tmp_path, capsys):
        target = tmp_path / "om.v"
        assert main(
            ["verilog", "--what", "online-mult", "--ndigits", "4",
             "--module", "om4", "-o", str(target)]
        ) == 0
        text = target.read_text()
        assert "module om4" in text
        assert "localparam" in text
