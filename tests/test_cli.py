"""Tests for the repro-overclock command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["model"])
        assert args.ndigits == 8
        assert args.samples == 20000

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_chains(self, capsys):
        assert main(["chains", "--ndigits", "6"]) == 0
        out = capsys.readouterr().out
        assert "chain delay" in out
        assert "P_d" in out

    def test_model_small(self, capsys):
        assert main(["model", "--ndigits", "6", "--samples", "500"]) == 0
        out = capsys.readouterr().out
        assert "model vs Monte-Carlo" in out

    def test_model_calibrated(self, capsys):
        assert main(
            ["model", "--ndigits", "6", "--samples", "500", "--calibrate"]
        ) == 0
        assert "calibrated kappa" in capsys.readouterr().out

    def test_area(self, capsys):
        assert main(["area", "--ndigits", "6"]) == 0
        out = capsys.readouterr().out
        assert "overhead" in out

    def test_multiplier_small(self, capsys):
        assert main(
            ["multiplier", "--ndigits", "4", "--samples", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "error-free period" in out

    def test_filter_tiny(self, capsys):
        assert main(["filter", "--image", "lena", "--size", "12"]) == 0
        out = capsys.readouterr().out
        assert "online SNR" in out

    def test_verilog_stdout(self, capsys):
        assert main(["verilog", "--what", "rca", "--ndigits", "4"]) == 0
        out = capsys.readouterr().out
        assert "module rca4" in out
        assert "endmodule" in out

    def test_verilog_file(self, tmp_path, capsys):
        target = tmp_path / "om.v"
        assert main(
            ["verilog", "--what", "online-mult", "--ndigits", "4",
             "--module", "om4", "-o", str(target)]
        ) == 0
        text = target.read_text()
        assert "module om4" in text
        assert "localparam" in text


class TestObservability:
    """The --trace flag plus the probe / stats / trace subcommands."""

    def _traced_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path / "state"))
        sink = tmp_path / "run.jsonl"
        rc = main(
            ["montecarlo", "--ndigits", "4", "--samples", "300",
             "--no-cache", "--trace", str(sink)]
        )
        assert rc == 0
        return sink

    def test_montecarlo_is_an_alias_for_model(self, capsys):
        assert main(
            ["montecarlo", "--ndigits", "4", "--samples", "200"]
        ) == 0
        assert "model vs Monte-Carlo" in capsys.readouterr().out

    def test_trace_flag_writes_span_tree(self, tmp_path, monkeypatch, capsys):
        import json

        sink = self._traced_run(tmp_path, monkeypatch)
        capsys.readouterr()
        records = [
            json.loads(line) for line in sink.read_text().splitlines()
        ]
        names = [r["name"] for r in records if r["type"] == "span"]
        assert "run.montecarlo" in names
        assert "shard" in names
        assert "mc.simulate" in names
        assert any(r["type"] == "metrics" for r in records)

    def test_trace_subcommand_renders_last_run(
        self, tmp_path, monkeypatch, capsys
    ):
        self._traced_run(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["trace", "--last"]) == 0
        out = capsys.readouterr().out
        assert "run.montecarlo" in out
        assert "mc.simulate" in out

    def test_trace_subcommand_with_explicit_path(
        self, tmp_path, monkeypatch, capsys
    ):
        sink = self._traced_run(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["trace", str(sink)]) == 0
        assert "run.montecarlo" in capsys.readouterr().out

    def test_stats_subcommand_renders_metrics(
        self, tmp_path, monkeypatch, capsys
    ):
        self._traced_run(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "gauges:" in out
        assert "samples_per_sec.montecarlo" in out

    def test_trace_without_any_run_fails_cleanly(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_STATE_DIR", str(tmp_path / "empty"))
        assert main(["trace", "--last"]) == 1
        assert "no trace recorded" in capsys.readouterr().err

    def test_retrace_overwrites_previous_file(
        self, tmp_path, monkeypatch, capsys
    ):
        import json

        self._traced_run(tmp_path, monkeypatch)
        sink = self._traced_run(tmp_path, monkeypatch)
        capsys.readouterr()
        records = [
            json.loads(line) for line in sink.read_text().splitlines()
        ]
        roots = [
            r for r in records
            if r["type"] == "span" and r["name"] == "run.montecarlo"
        ]
        assert len(roots) == 1  # two invocations must not merge trees

    def test_probe_subcommand(self, capsys):
        assert main(
            ["probe", "--ndigits", "4", "--samples", "300", "--no-cache"]
        ) == 0
        out = capsys.readouterr().out
        assert "Algorithm-2" in out
        assert "mean propagation-chain depth" in out
