"""MetricsRegistry unit tests: recording, snapshots, worker merging."""

from repro.obs.metrics import (
    HISTOGRAM_BUCKETS,
    MetricsRegistry,
    deterministic_snapshot,
    metrics,
)


class TestRecording:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.count("cache.hits")
        reg.count("cache.hits", 2)
        assert reg.snapshot()["counters"] == {"cache.hits": 3}

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("samples_per_sec.packed", 100.0)
        reg.gauge("samples_per_sec.packed", 250.0)
        assert reg.snapshot()["gauges"] == {"samples_per_sec.packed": 250.0}

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        for value in (1, 2, 3, 1000):
            reg.observe("shard.samples", value)
        buckets = reg.snapshot()["histograms"]["shard.samples"]
        assert len(buckets) == len(HISTOGRAM_BUCKETS)
        assert buckets[0] == 1  # value 1 -> bound 1
        assert buckets[1] == 1  # value 2 -> bound 2
        assert buckets[2] == 1  # value 3 -> bound 4
        assert buckets[HISTOGRAM_BUCKETS.index(1024)] == 1
        assert sum(buckets) == 4

    def test_histogram_overflow_lands_in_inf_bucket(self):
        reg = MetricsRegistry()
        reg.observe("big", 10**9)
        assert reg.snapshot()["histograms"]["big"][-1] == 1

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.count("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 1)
        reg.merge_counters({"a": 5})
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.count("a")
        reg.gauge("b", 1.0)
        reg.observe("c", 1)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestMerging:
    def test_merge_counters_folds_worker_deltas(self):
        reg = MetricsRegistry()
        reg.count("compile_cache.misses")
        reg.merge_counters({"compile_cache.misses": 2, "cache.hits": 1})
        assert reg.snapshot()["counters"] == {
            "cache.hits": 1,
            "compile_cache.misses": 3,
        }

    def test_merge_empty_is_noop(self):
        reg = MetricsRegistry()
        reg.merge_counters({})
        assert reg.snapshot()["counters"] == {}


class TestSnapshots:
    def test_snapshot_is_sorted_and_detached(self):
        reg = MetricsRegistry()
        reg.count("z")
        reg.count("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        snap["counters"]["a"] = 999
        assert reg.snapshot()["counters"]["a"] == 1

    def test_deterministic_snapshot_strips_gauges(self):
        reg = MetricsRegistry()
        reg.count("cache.hits")
        reg.gauge("samples_per_sec.wave", 123.4)
        reg.observe("h", 1)
        det = deterministic_snapshot(reg.snapshot())
        assert "gauges" not in det
        assert det["counters"] == {"cache.hits": 1}
        assert "h" in det["histograms"]


class TestGlobal:
    def test_metrics_returns_shared_registry(self):
        assert metrics() is metrics()
