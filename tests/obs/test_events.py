"""Event bus + ProgressReporter: bounds, drops, lifecycle, determinism."""

import threading

import pytest

from repro.obs.events import (
    DEFAULT_CAPACITY,
    EventBus,
    ProgressReporter,
    Subscription,
    progress_bus,
)
from repro.obs.metrics import metrics
from repro.runners import ParallelRunner


class TestEventBus:
    def test_publish_reaches_subscriber(self):
        bus = EventBus()
        sub = bus.subscribe()
        reporter = ProgressReporter(experiment="mc", run_id="k1", bus=bus)
        reporter.begin(2, 20)
        reporter.shard_queued(0, 10)
        reporter.shard_queued(1, 10)
        events = sub.drain()
        assert [e.transition for e in events] == ["queued", "queued"]
        assert [e.shard for e in events] == [0, 1]
        assert sub.drain() == []  # drain removes

    def test_run_id_filter(self):
        bus = EventBus()
        mine = bus.subscribe(run_id="k1")
        other = bus.subscribe(run_id="k2")
        everyone = bus.subscribe()
        ProgressReporter(run_id="k1", bus=bus).shard_queued(0, 1)
        assert mine.pending == 1
        assert other.pending == 0
        assert everyone.pending == 1

    def test_bounded_ring_drops_oldest_and_counts(self):
        before = metrics().snapshot()["counters"].get("events.dropped", 0)
        bus = EventBus()
        sub = bus.subscribe(capacity=3)
        reporter = ProgressReporter(run_id="k", bus=bus)
        for shard in range(5):
            reporter.shard_queued(shard, 1)
        assert sub.dropped == 2
        events = sub.drain()
        assert [e.shard for e in events] == [2, 3, 4]  # oldest gone
        after = metrics().snapshot()["counters"]["events.dropped"]
        assert after == before + 2

    def test_callback_fires_and_errors_are_counted(self):
        before = metrics().snapshot()["counters"].get(
            "events.callback_errors", 0
        )
        bus = EventBus()
        seen = []

        def bad_callback(event):
            seen.append(event)
            raise RuntimeError("subscriber bug")

        bus.subscribe(callback=bad_callback)
        reporter = ProgressReporter(run_id="k", bus=bus)
        reporter.shard_queued(0, 1)  # must not raise into the publisher
        assert len(seen) == 1
        after = metrics().snapshot()["counters"]["events.callback_errors"]
        assert after == before + 1

    def test_unsubscribe_is_idempotent(self):
        bus = EventBus()
        sub = bus.subscribe()
        assert bus.num_subscribers == 1
        bus.unsubscribe(sub)
        bus.unsubscribe(sub)
        assert bus.num_subscribers == 0
        ProgressReporter(run_id="k", bus=bus).shard_queued(0, 1)
        assert sub.pending == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Subscription(capacity=0)

    def test_global_bus_is_a_singleton(self):
        assert progress_bus() is progress_bus()
        assert progress_bus().capacity == DEFAULT_CAPACITY


class TestProgressReporter:
    def test_counters_accumulate_and_eta_needs_a_completion(self):
        reporter = ProgressReporter(experiment="mc", run_id="k", bus=EventBus())
        reporter.begin(2, 200)
        assert reporter.eta_seconds() is None
        reporter.shard_completed(0, 100, elapsed=1.0)  # 100 samples/s
        eta = reporter.eta_seconds()
        assert eta == pytest.approx(1.0)
        snap = reporter.snapshot()
        assert snap["shards_done"] == 1
        assert snap["samples_done"] == 100
        assert snap["shards_total"] == 2
        assert snap["samples_total"] == 200

    def test_begin_is_additive_across_batches(self):
        reporter = ProgressReporter(run_id="k", bus=EventBus())
        reporter.begin(2, 20)
        reporter.shard_completed(0, 10, elapsed=0.1)
        reporter.shard_completed(1, 10, elapsed=0.1)
        reporter.begin(1, 10)  # a second map() in the same run
        snap = reporter.snapshot()
        assert snap["shards_total"] == 3
        assert snap["samples_total"] == 30
        assert snap["shards_done"] == 2  # never reset mid-run

    def test_seq_and_done_counts_monotonic(self):
        bus = EventBus()
        sub = bus.subscribe()
        reporter = ProgressReporter(run_id="k", bus=bus)
        reporter.begin(3, 30)
        for shard in range(3):
            reporter.shard_queued(shard, 10)
        for shard in range(3):
            reporter.shard_started(shard, 10)
            reporter.shard_completed(shard, 10, elapsed=0.01)
        events = sub.drain()
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        done = [e.shards_done for e in events]
        assert done == sorted(done)
        assert events[-1].shards_done == 3
        assert events[-1].samples_done == 30

    def test_event_to_dict_round_trips_all_fields(self):
        bus = EventBus()
        sub = bus.subscribe()
        ProgressReporter(experiment="mc", run_id="k9", bus=bus).shard_queued(
            4, 25
        )
        payload = sub.drain()[0].to_dict()
        assert payload["run_id"] == "k9"
        assert payload["experiment"] == "mc"
        assert payload["transition"] == "queued"
        assert payload["shard"] == 4
        assert payload["samples"] == 25
        assert payload["eta_s"] is None

    def test_thread_safe_publishing(self):
        bus = EventBus()
        sub = bus.subscribe(capacity=10_000)
        reporter = ProgressReporter(run_id="k", bus=bus)
        reporter.begin(400, 400)

        def complete(lo, hi):
            for shard in range(lo, hi):
                reporter.shard_completed(shard, 1, elapsed=0.001)

        threads = [
            threading.Thread(target=complete, args=(i * 100, (i + 1) * 100))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reporter.snapshot()["shards_done"] == 400
        events = sub.drain()
        assert len(events) == 400
        assert events[-1].seq == 400


# module-level worker: must be picklable for the process pool
def _triple(task):
    return task * 3


def _run_events(jobs: int):
    bus = EventBus()
    sub = bus.subscribe(capacity=10_000)
    runner = ParallelRunner(jobs=jobs)
    runner.progress = ProgressReporter(
        experiment="unit", run_id="det", bus=bus
    )
    results = runner.map(_triple, list(range(6)), samples=[10] * 6)
    assert results == [3 * i for i in range(6)]
    return sub.drain()


class TestRunnerDeterminism:
    """The contract: event *content* is a pure function of the run."""

    def test_jobs1_vs_jobs2_same_multiset_and_finals(self):
        serial = _run_events(jobs=1)
        parallel = _run_events(jobs=2)

        def multiset(events):
            return sorted((e.transition, e.shard, e.samples) for e in events)

        assert multiset(serial) == multiset(parallel)
        for events in (serial, parallel):
            last = events[-1]
            assert last.shards_done == 6
            assert last.samples_done == 60
            assert last.shards_total == 6
            assert last.samples_total == 60

    def test_per_shard_transition_order(self):
        for events in (_run_events(jobs=1), _run_events(jobs=2)):
            by_shard = {}
            for e in events:
                by_shard.setdefault(e.shard, []).append(e.transition)
            for shard, transitions in by_shard.items():
                assert transitions[0] == "queued"
                assert transitions[1] == "started"
                assert transitions[-1] == "completed"

    def test_done_counts_monotonic_under_pool(self):
        events = _run_events(jobs=2)
        done = [e.shards_done for e in events]
        assert done == sorted(done)
        samples_done = [e.samples_done for e in events]
        assert samples_done == sorted(samples_done)

    def test_no_progress_by_default(self):
        runner = ParallelRunner(jobs=1)
        assert runner.progress is None
        sub = progress_bus().subscribe(run_id="never-used")
        try:
            runner.map(_triple, [1, 2])
            assert sub.pending == 0
        finally:
            progress_bus().unsubscribe(sub)
