"""Tracer unit tests: span records, ambient resolution, worker absorb.

The tracer is the substrate every traced experiment builds on, so these
tests pin the record schema (ids, parents, timing fields), the
``$REPRO_TRACE`` resolution rules, and the re-parenting contract that
merges worker-process spans into the parent tree.
"""

import json

import pytest

from repro.obs.trace import (
    DISABLED,
    TRACE_ENV,
    Tracer,
    current_tracer,
    reset_env_default,
    run_traced_worker,
    tracer_from_env,
    use_tracer,
    worker_trace_context,
)


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer", level=1):
            with tracer.span("inner", level=2):
                pass
        records = tracer.records
        assert [r["name"] for r in records] == ["inner", "outer"]
        inner, outer = records
        assert outer["parent"] is None
        assert inner["parent"] == outer["id"]
        assert inner["attrs"] == {"level": 2}

    def test_timing_fields(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.records
        for rec in (inner, outer):
            assert rec["type"] == "span"
            assert rec["end"] >= rec["start"]
            assert rec["dur"] == pytest.approx(rec["end"] - rec["start"])
        assert outer["start"] <= inner["start"]
        assert outer["end"] >= inner["end"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {r["name"]: r for r in tracer.records}
        assert by_name["a"]["parent"] == by_name["root"]["id"]
        assert by_name["b"]["parent"] == by_name["root"]["id"]

    def test_span_exception_still_closes(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (rec,) = tracer.records
        assert rec["name"] == "doomed"
        assert rec["end"] >= rec["start"]

    def test_ids_are_deterministic(self):
        def run():
            tracer = Tracer()
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            tracer.event("e")
            return [(r.get("id"), r.get("parent")) for r in tracer.records]

        assert run() == run()


class TestEvents:
    def test_event_attaches_to_active_span(self):
        tracer = Tracer()
        with tracer.span("work"):
            tracer.event("cache.hit", key="abc")
        event = [r for r in tracer.records if r["type"] == "event"][0]
        span = [r for r in tracer.records if r["type"] == "span"][0]
        assert event["span"] == span["id"]
        assert event["name"] == "cache.hit"
        assert event["attrs"] == {"key": "abc"}

    def test_event_outside_span_is_root(self):
        tracer = Tracer()
        tracer.event("lonely")
        (event,) = tracer.records
        assert event["span"] is None


class TestDisabled:
    def test_no_records_and_null_span(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ghost"):
            tracer.event("ghost.event")
        tracer.add_span("ghost2", start=0.0, end=1.0)
        tracer.absorb([{"type": "span", "id": "x", "parent": None}], "p")
        assert tracer.records == []

    def test_disabled_singleton_is_disabled(self):
        assert not DISABLED.enabled


class TestAbsorb:
    def test_reparents_worker_roots_only(self):
        worker = Tracer(id_prefix="s0.")
        with worker.span("root"):
            with worker.span("leaf"):
                pass
        parent = Tracer()
        shard = parent.add_span("shard", start=0.0, end=1.0, shard=0)
        parent.absorb(worker.export(), parent=shard)
        by_name = {r["name"]: r for r in parent.records}
        assert by_name["root"]["parent"] == shard
        assert by_name["leaf"]["parent"] == by_name["root"]["id"]
        assert by_name["root"]["id"].startswith("s0.")

    def test_worker_ids_cannot_collide_with_parent(self):
        parent = Tracer()
        ctx0 = {"prefix": "s0."}
        ctx1 = {"prefix": "s1."}
        _, rec0 = run_traced_worker(ctx0, lambda t: t, None)
        _, rec1 = run_traced_worker(ctx1, lambda t: t, None)
        with parent.span("run"):
            pass
        ids = {r["id"] for r in rec0 + rec1 + parent.records}
        assert len(ids) == len(rec0) + len(rec1) + len(parent.records)


class TestWorkerHelpers:
    def test_context_none_when_tracing_disabled(self):
        with use_tracer(DISABLED):
            assert worker_trace_context(0) is None

    def test_context_carries_shard_prefix(self):
        with use_tracer(Tracer()):
            assert worker_trace_context(3) == {"prefix": "s3."}

    def test_run_traced_worker_buffers_spans(self):
        def body(task):
            with current_tracer().span("sim", samples=task):
                return task * 2

        result, records = run_traced_worker({"prefix": "s5."}, body, 21)
        assert result == 42
        (rec,) = records
        assert rec["name"] == "sim"
        assert rec["id"].startswith("s5.")

    def test_run_traced_worker_without_context(self):
        result, records = run_traced_worker(None, lambda t: t + 1, 1)
        assert result == 2
        assert records == []


class TestAmbient:
    def test_default_is_disabled(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        reset_env_default()
        try:
            assert current_tracer() is DISABLED
        finally:
            reset_env_default()

    def test_use_tracer_scopes_installation(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert current_tracer() is tracer
        assert current_tracer() is not tracer

    def test_env_resolution(self, tmp_path):
        assert tracer_from_env({}) is DISABLED
        assert tracer_from_env({TRACE_ENV: "0"}) is DISABLED
        buffered = tracer_from_env({TRACE_ENV: "1"})
        assert buffered.enabled and buffered.sink is None
        sink = tmp_path / "t.jsonl"
        to_file = tracer_from_env({TRACE_ENV: str(sink)})
        assert to_file.enabled and to_file.sink == str(sink)


class TestFlush:
    def test_flush_writes_jsonl(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=sink)
        with tracer.span("a"):
            tracer.event("e")
        n = tracer.flush(extra=[{"type": "metrics", "snapshot": {}}])
        assert n == 3
        lines = [json.loads(l) for l in sink.read_text().splitlines()]
        assert {l["type"] for l in lines} == {"span", "event", "metrics"}
        # flushed records leave the buffer
        assert tracer.records == []

    def test_flush_without_sink_keeps_buffering(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert tracer.flush() == 0
        assert len(tracer.records) == 1

    def test_export_clears(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.export()) == 1
        assert tracer.export() == []
