"""Bench-regression ledger: record shape, round-trip, gate semantics."""

import json

import pytest

from repro.obs.ledger import (
    SCHEMA_VERSION,
    LedgerError,
    append_record,
    compare,
    format_report,
    load_ledger,
    make_record,
    metric_direction,
)


def _rec(name, metrics, ts="2026-08-07T00:00:00+00:00"):
    return make_record(name, metrics, ts=ts, sha="deadbeef")


class TestRecords:
    def test_record_shape(self):
        record = _rec("service", {"req_per_s": 120.5, "p99_ms": 41})
        assert record["schema"] == SCHEMA_VERSION
        assert record["name"] == "service"
        assert record["git_sha"] == "deadbeef"
        assert record["metrics"] == {"req_per_s": 120.5, "p99_ms": 41.0}
        machine = record["machine"]
        assert machine["python"] and machine["platform"]
        assert isinstance(machine["cpu_count"], int)

    def test_meta_carried(self):
        record = make_record(
            "x", {"v": 1}, ts="t", sha="s", meta={"samples": 2000}
        )
        assert record["meta"] == {"samples": 2000}

    def test_rejects_non_numeric_metrics(self):
        with pytest.raises(LedgerError):
            make_record("x", {"v": "fast"})
        with pytest.raises(LedgerError):
            make_record("x", {"v": True})
        with pytest.raises(LedgerError):
            make_record("x", {})
        with pytest.raises(LedgerError):
            make_record("", {"v": 1})

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = _rec("service", {"req_per_s": 100.0})
        second = _rec("service", {"req_per_s": 110.0})
        append_record(path, first)
        append_record(path, second)
        records = load_ledger(path)
        assert records == [first, second]

    def test_load_skips_torn_and_alien_lines(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_record(path, _rec("a", {"v": 1}))
        with open(path, "a") as fh:
            fh.write("{\"schema\": 999, \"name\": \"alien\", \"metrics\": {}}\n")
            fh.write("not json at all\n")
            fh.write("{\"torn\": ")  # crashed writer
        records = load_ledger(path)
        assert len(records) == 1
        assert records[0]["name"] == "a"

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_ledger(tmp_path / "absent.jsonl") == []


class TestDirections:
    def test_heuristics(self):
        assert metric_direction("req_per_s") == "higher"
        assert metric_direction("speedup") == "higher"
        assert metric_direction("warm_speedup") == "higher"
        assert metric_direction("p99_ms") == "lower"
        assert metric_direction("p50") == "lower"
        assert metric_direction("overhead") == "lower"
        assert metric_direction("eta_s") == "lower"

    def test_explicit_map_wins(self):
        assert metric_direction(
            "warm_speedup", {"warm_speedup": "lower"}
        ) == "lower"
        with pytest.raises(LedgerError):
            metric_direction("x", {"x": "sideways"})


class TestCompare:
    def test_single_record_yields_nothing(self):
        assert compare([_rec("a", {"v": 1})]) == []

    def test_improvement_passes(self):
        verdicts = compare([
            _rec("service", {"req_per_s": 100.0}),
            _rec("service", {"req_per_s": 120.0}),
        ])
        [v] = verdicts
        assert not v.regressed
        assert v.ratio == pytest.approx(1.2)

    def test_regression_beyond_tolerance_flags(self):
        verdicts = compare(
            [
                _rec("service", {"req_per_s": 100.0}),
                _rec("service", {"req_per_s": 85.0}),
            ],
            tolerance=0.10,
        )
        [v] = verdicts
        assert v.regressed
        assert v.best == 100.0

    def test_within_tolerance_passes(self):
        verdicts = compare(
            [
                _rec("service", {"req_per_s": 100.0}),
                _rec("service", {"req_per_s": 95.0}),
            ],
            tolerance=0.10,
        )
        assert not verdicts[0].regressed

    def test_lower_is_better_direction(self):
        verdicts = compare(
            [
                _rec("service", {"p99_ms": 40.0}),
                _rec("service", {"p99_ms": 80.0}),
            ],
            tolerance=0.10,
        )
        [v] = verdicts
        assert v.direction == "lower"
        assert v.regressed

    def test_newest_is_latest_timestamp_not_file_order(self):
        # merged/re-sharded ledgers carry records out of arrival order;
        # the gate must pick the newest *timestamp*, not the last line
        verdicts = compare(
            [
                _rec("s", {"req_per_s": 100.0}, ts="2026-08-01T00:00:00+00:00"),
                _rec("s", {"req_per_s": 80.0}, ts="2026-08-03T00:00:00+00:00"),
                _rec("s", {"req_per_s": 120.0}, ts="2026-08-02T00:00:00+00:00"),
            ],
            tolerance=0.10,
        )
        [v] = verdicts
        assert v.newest == 80.0  # the 08-03 run, despite its file position
        assert v.best == 120.0
        assert v.regressed

    def test_equal_timestamps_fall_back_to_file_order(self):
        verdicts = compare(
            [
                _rec("s", {"req_per_s": 100.0}),
                _rec("s", {"req_per_s": 90.0}),  # same default ts: last wins
            ],
            tolerance=0.0,
        )
        [v] = verdicts
        assert v.newest == 90.0
        assert v.best == 100.0

    def test_newest_vs_best_prior_not_just_previous(self):
        # a slow middle run must not lower the bar
        verdicts = compare(
            [
                _rec("s", {"req_per_s": 100.0}),
                _rec("s", {"req_per_s": 50.0}),
                _rec("s", {"req_per_s": 80.0}),
            ],
            tolerance=0.10,
        )
        [v] = verdicts
        assert v.best == 100.0
        assert v.regressed

    def test_three_benchmarks_round_trip(self, tmp_path):
        # the acceptance shape: three benchmarks publishing twice each
        path = tmp_path / "ledger.jsonl"
        for name, metric, first, second in [
            ("parallel_runner", "speedup", 3.2, 3.4),
            ("service", "req_per_s", 400.0, 410.0),
            ("fused_sweep", "speedup", 11.0, 12.5),
        ]:
            append_record(path, _rec(name, {metric: first}))
            append_record(path, _rec(name, {metric: second}))
        verdicts = compare(load_ledger(path))
        assert len(verdicts) == 3
        assert not any(v.regressed for v in verdicts)
        report = format_report(verdicts, tolerance=0.10)
        assert "0 regression(s)" in report
        for name in ("parallel_runner", "service", "fused_sweep"):
            assert name in report

    def test_format_report_names_regressions(self):
        verdicts = compare(
            [
                _rec("s", {"req_per_s": 100.0}),
                _rec("s", {"req_per_s": 10.0}),
            ]
        )
        report = format_report(verdicts, tolerance=0.10)
        assert "REGRESSED" in report
        assert "1 regression(s)" in report

    def test_bad_tolerance(self):
        with pytest.raises(LedgerError):
            compare([], tolerance=-0.1)


class TestCheckRegressionScript:
    def test_gate_and_report_only_modes(self, tmp_path):
        import importlib.util
        import pathlib

        spec = importlib.util.spec_from_file_location(
            "check_regression",
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "check_regression.py",
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        path = tmp_path / "ledger.jsonl"
        append_record(path, _rec("s", {"req_per_s": 100.0}))
        append_record(path, _rec("s", {"req_per_s": 10.0}))
        assert mod.main(["--ledger", str(path)]) == 1
        assert mod.main(["--ledger", str(path), "--report-only"]) == 0
        assert mod.main(["--ledger", str(path), "--tolerance", "0.95"]) == 0
        assert mod.main(["--ledger", str(tmp_path / "none.jsonl")]) == 0
