"""Tracing must never perturb results: the observer-effect tests.

Two guarantees from the observability design:

* same ``RunConfig`` + seed with tracing on vs off produces
  bit-identical results, on both simulation engines;
* ``jobs=1`` and ``jobs=N`` produce the *same span tree* (modulo shard
  completion order, which :func:`normalized_tree` factors out) as well
  as bit-identical results — the trace is a function of the work, not
  of the execution layout.
"""

import numpy as np

from repro.obs import Tracer, use_tracer
from repro.obs.render import normalized_tree
from repro.runners.config import RunConfig
from repro.sim.montecarlo import run_montecarlo
from repro.sim.sweep import run_sweep


def _config(jobs: int, backend: str = "packed") -> RunConfig:
    # small shard_size: even tiny budgets exercise multi-shard merging
    return RunConfig(
        ndigits=4, jobs=jobs, cache_dir=None, shard_size=100, backend=backend
    )


def _traced(fn, *args, **kwargs):
    tracer = Tracer()
    with use_tracer(tracer):
        result = fn(*args, **kwargs)
    return result, tracer.export()


class TestTracingIsInvisible:
    def test_montecarlo_bit_identical_packed(self):
        plain = run_montecarlo(_config(1), num_samples=350)
        traced, records = _traced(
            run_montecarlo, _config(1), num_samples=350
        )
        assert records  # tracing actually happened
        assert np.array_equal(plain.mean_abs_error, traced.mean_abs_error)
        assert np.array_equal(
            plain.violation_probability, traced.violation_probability
        )

    def test_montecarlo_bit_identical_wave(self):
        plain = run_montecarlo(_config(1, "wave"), num_samples=350)
        traced, records = _traced(
            run_montecarlo, _config(1, "wave"), num_samples=350
        )
        assert records
        assert np.array_equal(plain.mean_abs_error, traced.mean_abs_error)
        assert np.array_equal(
            plain.violation_probability, traced.violation_probability
        )

    def test_wave_and_packed_agree_under_tracing(self):
        a, _ = _traced(run_montecarlo, _config(1, "wave"), num_samples=350)
        b, _ = _traced(run_montecarlo, _config(1, "packed"), num_samples=350)
        assert np.array_equal(a.mean_abs_error, b.mean_abs_error)

    def test_sweep_bit_identical(self):
        plain = run_sweep(_config(1), num_samples=250)
        traced, records = _traced(run_sweep, _config(1), num_samples=250)
        assert records
        assert np.array_equal(plain.mean_abs_error, traced.mean_abs_error)
        assert plain.error_free_step == traced.error_free_step


class TestSpanTreeAcrossJobs:
    def test_montecarlo_same_tree_inline_vs_pool(self):
        a, rec_a = _traced(run_montecarlo, _config(1), num_samples=350)
        b, rec_b = _traced(run_montecarlo, _config(2), num_samples=350)
        assert np.array_equal(a.mean_abs_error, b.mean_abs_error)
        assert np.array_equal(
            a.violation_probability, b.violation_probability
        )
        assert normalized_tree(rec_a) == normalized_tree(rec_b)

    def test_tree_covers_run_shards_and_simulation(self):
        _, records = _traced(run_montecarlo, _config(2), num_samples=350)
        names = [r["name"] for r in records if r["type"] == "span"]
        assert names.count("run.montecarlo") == 1
        assert names.count("shard") == 4  # 350 samples / shard_size 100
        assert names.count("mc.simulate") == 4

    def test_attached_metrics_have_no_timing_content(self):
        # gauges carry wall-clock rates; the snapshot a result carries
        # (and may serialize) must contain only deterministic sections
        result = run_montecarlo(_config(2), num_samples=350)
        assert set(result.metrics) == {"counters", "histograms"}
        data = result.to_dict()
        assert data["metrics"] == result.metrics
