"""Prometheus exposition: grammar validity, cumulation, golden bytes."""

import re
from pathlib import Path

from repro.obs.export import prometheus_name, render_prometheus
from repro.obs.metrics import HISTOGRAM_BUCKETS, MetricsRegistry

GOLDEN = Path(__file__).parent / "data" / "prometheus_golden.txt"

#: one exposition-format sample line: name, optional labels, value
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"\\\n]*\"(,[a-zA-Z_][a-zA-Z0-9_]*="
    r"\"[^\"\\\n]*\")*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$"
)
_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$")


def _assert_parses(text: str) -> None:
    """Every line must be a valid comment or sample line."""
    assert text.endswith("\n")
    for line in text.splitlines():
        if line.startswith("#"):
            assert _COMMENT.match(line), f"bad comment line: {line!r}"
        else:
            assert _SAMPLE.match(line), f"bad sample line: {line!r}"


def _snapshot():
    reg = MetricsRegistry()
    reg.count("cache.hits", 7)
    reg.count("service.requests.montecarlo", 3)
    reg.gauge("service.queue_depth", 2.0)
    reg.gauge("samples_per_sec.vector", 1234.5)
    for value in (1, 3, 3, 5000):
        reg.observe("shard.samples", value)
    return reg.snapshot()


class TestGrammar:
    def test_full_snapshot_parses(self):
        _assert_parses(render_prometheus(_snapshot()))

    def test_empty_snapshot_is_empty_body(self):
        assert render_prometheus(MetricsRegistry().snapshot()) == ""

    def test_live_registry_default(self):
        text = render_prometheus()
        if text:
            _assert_parses(text)

    def test_name_folding(self):
        assert prometheus_name("cache.hits") == "repro_cache_hits"
        assert prometheus_name("samples_per_sec.vector") == (
            "repro_samples_per_sec_vector"
        )
        assert prometheus_name("weird-name!") == "repro_weird_name_"
        assert prometheus_name("0start") == "repro__0start"


class TestSemantics:
    def test_counter_gets_total_suffix_and_type(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_cache_hits_total counter" in text
        assert "\nrepro_cache_hits_total 7\n" in text

    def test_gauge_rendered_verbatim(self):
        text = render_prometheus(_snapshot())
        assert "# TYPE repro_service_queue_depth gauge" in text
        assert "\nrepro_service_queue_depth 2\n" in text
        assert "repro_samples_per_sec_vector 1234.5" in text

    def test_histogram_buckets_are_cumulative(self):
        text = render_prometheus(_snapshot())
        # observations: 1 -> le=1; 3,3 -> le=4; 5000 -> le=16384
        assert 'repro_shard_samples_bucket{le="1"} 1' in text
        assert 'repro_shard_samples_bucket{le="2"} 1' in text
        assert 'repro_shard_samples_bucket{le="4"} 3' in text
        assert 'repro_shard_samples_bucket{le="16384"} 4' in text
        assert 'repro_shard_samples_bucket{le="+Inf"} 4' in text
        assert "repro_shard_samples_count 4" in text

    def test_bucket_count_matches_registry_layout(self):
        text = render_prometheus(_snapshot())
        buckets = re.findall(r"repro_shard_samples_bucket", text)
        assert len(buckets) == len(HISTOGRAM_BUCKETS)


class TestGolden:
    def test_matches_golden_file(self):
        rendered = render_prometheus(_snapshot())
        assert rendered == GOLDEN.read_text()

    def test_golden_file_parses(self):
        _assert_parses(GOLDEN.read_text())
