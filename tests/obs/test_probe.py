"""StageErrorProbe vs Algorithm 2: observed error statistics match the model.

The paper's model has two regimes where its prediction is sharp:

* **saturated periods** (small ``b``): nearly every propagation chain is
  longer than ``b`` stages, ``Prob(T_S)`` saturates at 1 and the
  Monte-Carlo violation fraction sits within sampling noise of it;
* **provably safe periods** (``b >= N + delta - 1`` onward): no chain is
  that long, both model and observation are *exactly* zero.

Between the two the model's independence approximation under-counts
correlated chains (a known gap, documented in DESIGN.md), so the
quantitative check pins the sharp regimes — at least three depths — and
the mid-range is covered qualitatively: the first-erroneous-digit
histogram must march LSD-ward as the period relaxes.
"""

import numpy as np
import pytest

from repro.obs import run_stage_probe
from repro.obs.probe import StageProbeResult
from repro.runners.config import RunConfig
from repro.runners.results import result_from_dict

NDIGITS = 8
SAMPLES = 6000
# binomial noise at p ~ 0.95, n = 6000 is ~0.003; 0.03 is 10 sigma
MC_TOLERANCE = 0.03


@pytest.fixture(scope="module")
def probe() -> StageProbeResult:
    config = RunConfig(ndigits=NDIGITS, jobs=1, cache_dir=None)
    return run_stage_probe(config, num_samples=SAMPLES)


class TestAgainstAlgorithm2:
    def test_matches_at_three_or_more_periods(self, probe):
        rows = {r["depth"]: r for r in probe.compare_to_model()}
        matching = [
            b for b, r in rows.items() if r["abs_diff"] <= MC_TOLERANCE
        ]
        assert len(matching) >= 3, f"only {matching} within tolerance"

    def test_saturated_periods(self, probe):
        rows = {r["depth"]: r for r in probe.compare_to_model()}
        # b=4: virtually every sample excites a chain longer than 4
        assert rows[4]["predicted"] == 1.0
        assert rows[4]["observed"] == pytest.approx(1.0, abs=MC_TOLERANCE)

    def test_provably_safe_periods_are_exactly_zero(self, probe):
        rows = {r["depth"]: r for r in probe.compare_to_model()}
        safe = [b for b in rows if b >= NDIGITS]
        assert len(safe) >= 2
        for b in safe:
            assert rows[b]["predicted"] == 0.0
            assert rows[b]["observed"] == 0.0

    def test_violation_probability_monotone_in_period(self, probe):
        observed = probe.observed_violation_probability()
        assert all(np.diff(observed) <= 0)

    def test_first_error_digit_marches_lsd_ward(self, probe):
        # as the period relaxes, damage retreats toward less significant
        # output digits: the mean first-erroneous-digit index (MSD = 0)
        # must strictly increase over the depths that still see errors
        means = []
        for i, b in enumerate(probe.depths):
            counts = probe.first_error_counts[i][:-1]  # drop error-free col
            total = counts.sum()
            if total == 0:
                break
            positions = np.arange(counts.shape[0])
            means.append((counts * positions).sum() / total)
        assert len(means) >= 3
        assert all(np.diff(means) > 0)

    def test_chain_depths_bounded_by_pipeline_length(self, probe):
        max_depth = probe.ndigits + probe.delta
        assert probe.chain_depth_counts.shape[0] == max_depth + 1
        assert probe.chain_depth_counts.sum() == SAMPLES
        assert probe.delta <= probe.mean_chain_depth() <= max_depth


class TestResultProtocol:
    def test_roundtrip_through_dict(self, probe):
        clone = result_from_dict(probe.to_dict())
        assert isinstance(clone, StageProbeResult)
        assert np.array_equal(clone.depths, probe.depths)
        assert np.array_equal(
            clone.first_error_counts, probe.first_error_counts
        )
        assert np.array_equal(clone.value_violations, probe.value_violations)
        assert np.array_equal(
            clone.chain_depth_counts, probe.chain_depth_counts
        )
        assert clone.metrics == probe.metrics

    def test_bit_identical_across_jobs(self):
        a = run_stage_probe(
            RunConfig(ndigits=4, jobs=1, cache_dir=None, shard_size=100),
            num_samples=300,
        )
        b = run_stage_probe(
            RunConfig(ndigits=4, jobs=2, cache_dir=None, shard_size=100),
            num_samples=300,
        )
        assert np.array_equal(a.first_error_counts, b.first_error_counts)
        assert np.array_equal(a.value_violations, b.value_violations)
        assert np.array_equal(a.chain_depth_counts, b.chain_depth_counts)
