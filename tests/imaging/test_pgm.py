"""Tests for PGM image I/O."""

import numpy as np
import pytest

from repro.imaging.pgm import read_pgm, write_pgm


class TestPgm:
    def test_roundtrip(self, tmp_path):
        img = np.arange(48, dtype=np.uint8).reshape(6, 8)
        path = tmp_path / "img.pgm"
        write_pgm(path, img)
        assert np.array_equal(read_pgm(path), img)

    def test_float_input_clipped(self, tmp_path):
        img = np.array([[-5.0, 300.0], [127.4, 127.6]])
        path = tmp_path / "img.pgm"
        write_pgm(path, img)
        back = read_pgm(path)
        assert back.tolist() == [[0, 255], [127, 128]]

    def test_rejects_non_2d(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 3)))

    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pgm"
        path.write_bytes(b"P6\n2 2\n255\n\x00\x00\x00\x00")
        with pytest.raises(ValueError):
            read_pgm(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "short.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x00")
        with pytest.raises(ValueError):
            read_pgm(path)
