"""Tests for the synthetic benchmark image generators."""

import numpy as np
import pytest

from repro.imaging.synthetic import (
    BENCHMARK_IMAGES,
    benchmark_image,
    lena_like,
    tiffany_like,
    uniform_noise_image,
)


class TestGenerators:
    @pytest.mark.parametrize("name", sorted(BENCHMARK_IMAGES))
    def test_shape_dtype_range(self, name):
        img = benchmark_image(name, size=48)
        assert img.shape == (48, 48)
        assert img.dtype == np.uint8

    @pytest.mark.parametrize("name", sorted(BENCHMARK_IMAGES))
    def test_deterministic(self, name):
        a = benchmark_image(name, size=32)
        b = benchmark_image(name, size=32)
        assert np.array_equal(a, b)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            benchmark_image("mandrill")

    def test_tiffany_is_bright_low_contrast(self):
        img = tiffany_like(size=64).astype(float)
        assert img.mean() > 150
        assert img.std() < uniform_noise_image(size=64).astype(float).std()

    def test_real_images_are_spatially_correlated(self):
        """The property the paper's 'real inputs' experiments rely on:
        neighbouring pixels are similar, unlike UI noise."""

        def lag1_corr(img):
            x = img.astype(float)
            a = x[:, :-1].ravel() - x.mean()
            b = x[:, 1:].ravel() - x.mean()
            return float((a * b).mean() / (x.std() ** 2 + 1e-9))

        for name in ("lena", "pepper", "sailboat", "tiffany"):
            assert lag1_corr(benchmark_image(name, size=64)) > 0.5
        assert abs(lag1_corr(uniform_noise_image(size=64))) < 0.1

    def test_images_use_full_headroom_without_clipping_everything(self):
        img = lena_like(size=64)
        assert img.min() < 60
        assert img.max() > 180
