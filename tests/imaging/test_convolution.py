"""Tests for the generic convolution datapath and the Sobel preset."""

import numpy as np
import pytest

from repro.imaging.filters import (
    SOBEL_X_KERNEL_8THS,
    SOBEL_Y_KERNEL_8THS,
    ConvolutionDatapath,
    SobelFilterDatapath,
    convolution_reference,
)
from repro.imaging.synthetic import benchmark_image
from repro.netlist.delay import UnitDelay


@pytest.fixture(scope="module")
def image():
    return benchmark_image("sailboat", size=12)


class TestConvolutionReference:
    def test_identity_kernel(self):
        img = benchmark_image("lena", size=8)
        kernel = np.zeros((3, 3), dtype=np.int64)
        kernel[1, 1] = 4
        out = convolution_reference(img, kernel, 2)
        assert np.array_equal(out, img[1:-1, 1:-1].astype(float))

    def test_sobel_zero_on_flat(self):
        flat = np.full((8, 8), 77, dtype=np.uint8)
        out = convolution_reference(flat, SOBEL_X_KERNEL_8THS, 3)
        assert np.all(out == 0)

    def test_sobel_detects_vertical_edge(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        img[:, 4:] = 200
        out = convolution_reference(img, SOBEL_X_KERNEL_8THS, 3)
        assert out.max() > 50  # strong response at the edge
        out_y = convolution_reference(img, SOBEL_Y_KERNEL_8THS, 3)
        assert np.abs(out_y).max() == 0  # orthogonal kernel silent

    def test_kernel_shape_check(self):
        with pytest.raises(ValueError):
            convolution_reference(np.zeros((5, 5)), np.zeros((2, 2)), 3)


class TestConvolutionDatapath:
    def test_kernel_overflow_guard(self):
        kernel = np.full((3, 3), 10, dtype=np.int64)  # sums to 90 > 64
        with pytest.raises(ValueError):
            ConvolutionDatapath("online", kernel=kernel, kernel_frac_bits=6)

    def test_signed_kernel_rejects_input_coefficients(self):
        with pytest.raises(ValueError):
            ConvolutionDatapath(
                "online",
                kernel=SOBEL_X_KERNEL_8THS,
                kernel_frac_bits=3,
                coefficients_as_inputs=True,
            )

    def test_ndigits_must_cover_kernel(self):
        with pytest.raises(ValueError):
            ConvolutionDatapath(
                "traditional",
                kernel=SOBEL_X_KERNEL_8THS,
                kernel_frac_bits=9,
                ndigits=8,
            )

    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_sobel_matches_reference(self, image, arith):
        dp = SobelFilterDatapath(arith, delay_model=UnitDelay())
        run = dp.apply(image)
        ref = convolution_reference(image, SOBEL_X_KERNEL_8THS, 3)
        tol = 1e-9 if arith == "traditional" else 9 * 2**-8 * 256
        assert np.abs(run.correct - ref).max() <= tol

    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_vertical_variant(self, image, arith):
        dp = SobelFilterDatapath(arith, delay_model=UnitDelay(), vertical=True)
        run = dp.apply(image)
        ref = convolution_reference(image, SOBEL_Y_KERNEL_8THS, 3)
        tol = 1e-9 if arith == "traditional" else 9 * 2**-8 * 256
        assert np.abs(run.correct - ref).max() <= tol

    def test_sobel_overclocking_sweep(self, image):
        """Signed-coefficient datapaths show the same LSD-vs-MSB split."""
        worst = {}
        for arith in ("traditional", "online"):
            dp = SobelFilterDatapath(arith, delay_model=UnitDelay())
            run = dp.apply(image)
            out = run.decode(max(1, int(run.error_free_step * 0.9)))
            worst[arith] = float(np.abs(out - run.correct).max())
        assert worst["online"] <= worst["traditional"] or worst["online"] < 8.0

    def test_negative_outputs_decoded(self, image):
        dp = SobelFilterDatapath("traditional", delay_model=UnitDelay())
        run = dp.apply(image)
        assert run.correct.min() < 0  # edges in both directions
