"""Tests for the Gaussian-filter datapaths (small images for speed)."""

import numpy as np
import pytest

from repro.imaging.filters import (
    GAUSSIAN_KERNEL_64THS,
    GaussianFilterDatapath,
    gaussian_reference,
    image_patches,
)
from repro.imaging.synthetic import benchmark_image
from repro.netlist.delay import UnitDelay


@pytest.fixture(scope="module")
def small_image():
    return benchmark_image("lena", size=14)


@pytest.fixture(scope="module")
def runs(small_image):
    out = {}
    for arith in ("traditional", "online"):
        dp = GaussianFilterDatapath(arith, delay_model=UnitDelay())
        out[arith] = (dp, dp.apply(small_image))
    return out


class TestFromSpec:
    """Spec-driven construction and the deprecated positional shim."""

    def test_from_spec_picks_arithmetic_from_style(self):
        import warnings

        from repro.imaging.filters import ConvolutionDatapath

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            online = ConvolutionDatapath.from_spec(
                "online-mult", ndigits=8, delay_model=UnitDelay()
            )
            trad = ConvolutionDatapath.from_spec(
                "array-mult", ndigits=8, delay_model=UnitDelay()
            )
        assert online.arithmetic == "online"
        assert trad.arithmetic == "traditional"
        assert online.spec.name == "online-mult"

    def test_from_spec_rejects_adder_specs(self):
        from repro.imaging.filters import ConvolutionDatapath

        with pytest.raises(ValueError):
            ConvolutionDatapath.from_spec("online-add", ndigits=8)

    def test_positional_constructor_warns(self):
        from repro.imaging.filters import ConvolutionDatapath

        with pytest.warns(DeprecationWarning, match="from_spec"):
            ConvolutionDatapath("online", ndigits=8, delay_model=UnitDelay())

    def test_preset_subclasses_stay_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            dp = GaussianFilterDatapath("online", delay_model=UnitDelay())
        assert dp.spec.name == "online-mult"

    def test_unknown_arithmetic_rejected(self):
        from repro.imaging.filters import ConvolutionDatapath

        with pytest.raises(ValueError, match="arithmetic"):
            ConvolutionDatapath("ternary", ndigits=8)


class TestKernelAndReference:
    def test_kernel_normalised(self):
        assert GAUSSIAN_KERNEL_64THS.sum() == 64

    def test_kernel_symmetric(self):
        k = GAUSSIAN_KERNEL_64THS
        assert np.array_equal(k, k.T)
        assert np.array_equal(k, k[::-1, ::-1])

    def test_reference_shape(self, small_image):
        out = gaussian_reference(small_image)
        assert out.shape == (12, 12)

    def test_reference_preserves_constant(self):
        flat = np.full((8, 8), 100, dtype=np.uint8)
        assert np.allclose(gaussian_reference(flat), 100.0)

    def test_reference_range(self, small_image):
        out = gaussian_reference(small_image)
        assert out.min() >= 0 and out.max() <= 255

    def test_reference_rejects_small(self):
        with pytest.raises(ValueError):
            gaussian_reference(np.zeros((2, 5)))

    def test_patches_layout(self):
        img = np.arange(16, dtype=np.uint8).reshape(4, 4)
        patches = image_patches(img)
        assert patches.shape == (9, 4)
        # centre tap of the first patch is pixel (1, 1) = 5
        assert patches[4, 0] == 5


class TestDatapaths:
    def test_traditional_matches_reference_exactly(self, small_image, runs):
        _dp, run = runs["traditional"]
        ref = gaussian_reference(small_image)
        assert np.allclose(run.correct, ref)

    def test_online_matches_reference_within_truncation(
        self, small_image, runs
    ):
        """Each online product is rounded to N digits: |err| <= 9 * 2^-N
        image units (the nine-tap sum of per-product truncation)."""
        _dp, run = runs["online"]
        ref = gaussian_reference(small_image)
        assert np.abs(run.correct - ref).max() <= 9 * 2**-8 * 256

    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_error_free_frequency_found(self, runs, arith):
        _dp, run = runs[arith]
        assert 0 < run.error_free_step <= run.settle_step
        assert np.array_equal(run.decode(run.error_free_step), run.correct)

    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_overclocking_causes_errors(self, runs, arith):
        _dp, run = runs[arith]
        overclocked = run.decode(max(1, run.error_free_step // 2))
        assert not np.array_equal(overclocked, run.correct)

    def test_output_image_clipping(self, runs):
        _dp, run = runs["traditional"]
        img = run.output_image(run.settle_step)
        assert img.dtype == np.uint8

    def test_step_for_factor(self, runs):
        _dp, run = runs["online"]
        assert run.step_for_factor(1.0) == run.error_free_step
        assert run.step_for_factor(2.0) == run.error_free_step // 2
        with pytest.raises(ValueError):
            run.step_for_factor(0)

    def test_invalid_arithmetic(self):
        with pytest.raises(ValueError):
            GaussianFilterDatapath("decimal")

    def test_ndigits_minimum(self):
        with pytest.raises(ValueError):
            GaussianFilterDatapath("online", ndigits=4)

    def test_coefficient_input_variant_builds(self, small_image):
        dp = GaussianFilterDatapath(
            "traditional",
            delay_model=UnitDelay(),
            coefficients_as_inputs=True,
        )
        run = dp.apply(small_image)
        ref = gaussian_reference(small_image)
        assert np.allclose(run.correct, ref)

    def test_constant_folding_shrinks_circuit(self, small_image):
        folded = GaussianFilterDatapath("traditional", delay_model=UnitDelay())
        generic = GaussianFilterDatapath(
            "traditional", delay_model=UnitDelay(), coefficients_as_inputs=True
        )
        assert folded.circuit.num_gates < generic.circuit.num_gates


class TestDegenerateFrameStudy:
    """The study must skip, not crash, on degenerate-but-legal frames.

    An edge filter over the all-black ``"flat"`` benchmark frame has an
    all-zero correct output.  ``mre_percent``/``snr_db`` historically
    raised ``ValueError`` there, aborting the entire sweep; they now
    report the documented ``0.0``/``nan`` and ``inf``/``-inf`` values
    and the study aggregates them untouched.
    """

    def test_flat_frame_edge_filter_completes(self, tmp_path):
        import math

        from repro.imaging.filters import run_filter_study
        from repro.runners import RunConfig

        config = RunConfig(ndigits=8, cache_dir=str(tmp_path))
        study = run_filter_study(
            config,
            images=["flat"],
            arithmetics=["traditional"],
            factors=[1.05, 1.25],
            size=10,
            kernel="sobel-x",
            delay_model=UnitDelay(),
        )
        for factor in (1.05, 1.25):
            # the correct output is all-zero while the overclocked
            # capture is not (folded negative coefficients hold nonzero
            # internal nodes mid-settle), so the documented degenerate
            # values appear: no reference magnitude, noise without signal
            assert math.isnan(study.mre("traditional", "flat", factor))
            assert study.snr("traditional", "flat", factor) == -math.inf
        # non-finite / degenerate values survive the cache round-trip
        again = run_filter_study(
            config,
            images=["flat"],
            arithmetics=["traditional"],
            factors=[1.05, 1.25],
            size=10,
            kernel="sobel-x",
            delay_model=UnitDelay(),
        )
        assert again.run_stats.cache == "hit"
        np.testing.assert_array_equal(again.snr_db, study.snr_db)
