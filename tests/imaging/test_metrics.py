"""Tests for the MRE / SNR / PSNR metrics."""

import math

import numpy as np
import pytest

from repro.imaging.metrics import mre_percent, psnr_db, snr_db


class TestMre:
    def test_zero_for_identical(self):
        a = np.array([1.0, 2.0, 3.0])
        assert mre_percent(a, a) == 0.0

    def test_eq12_definition(self):
        correct = np.array([1.0, 1.0])
        actual = np.array([1.1, 0.9])
        # E_err = 0.1, E_out = 1.0 -> 10 %
        assert mre_percent(correct, actual) == pytest.approx(10.0)

    def test_all_zero_correct_with_error_is_nan(self):
        # Historically raised ValueError, aborting a whole sweep on a
        # degenerate-but-legal frame; now nan ("no reference magnitude").
        assert math.isnan(mre_percent(np.zeros(4), np.ones(4)))

    def test_all_zero_exact_match_is_zero(self):
        assert mre_percent(np.zeros(4), np.zeros(4)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mre_percent(np.zeros(3), np.zeros(4))


class TestSnr:
    def test_infinite_for_identical(self):
        a = np.array([1.0, -2.0])
        assert math.isinf(snr_db(a, a))

    def test_known_value(self):
        correct = np.array([10.0, 10.0])
        actual = np.array([11.0, 9.0])
        # signal power 200, noise power 2 -> 20 dB
        assert snr_db(correct, actual) == pytest.approx(20.0)

    def test_zero_signal_with_noise_is_negative_infinity(self):
        # Historically raised ValueError; now -inf (noise, no signal).
        assert snr_db(np.zeros(3), np.ones(3)) == -math.inf

    def test_zero_signal_exact_match_is_infinity(self):
        assert snr_db(np.zeros(3), np.zeros(3)) == math.inf

    def test_snr_orders_designs(self):
        """Small LSD errors beat rare full-scale errors at equal MRE."""
        rng = np.random.default_rng(0)
        correct = rng.uniform(50, 200, 1000)
        lsd = correct + rng.uniform(-0.5, 0.5, 1000)  # everywhere-tiny
        msb = correct.copy()
        msb[::100] += 128.0  # rare huge
        # calibrate to the same mean absolute error
        scale = np.abs(msb - correct).mean() / np.abs(lsd - correct).mean()
        lsd_scaled = correct + (lsd - correct) * scale
        assert snr_db(correct, lsd_scaled) > snr_db(correct, msb)


class TestPsnr:
    def test_infinite_for_identical(self):
        a = np.array([0.0, 255.0])
        assert math.isinf(psnr_db(a, a))

    def test_known_value(self):
        correct = np.zeros(4)
        actual = np.full(4, 255.0)
        assert psnr_db(correct, actual) == pytest.approx(0.0)
