"""Unit tests for the LUT area model."""

import pytest

from repro.netlist.area import AreaReport, estimate_area, _luts_for_fanin
from repro.netlist.gates import Circuit


class TestLutsForFanin:
    def test_small_gates_one_lut(self):
        for fanin in range(1, 7):
            assert _luts_for_fanin(fanin) == 1

    def test_wide_gate_decomposition(self):
        assert _luts_for_fanin(7) == 2
        assert _luts_for_fanin(11) == 2
        assert _luts_for_fanin(12) == 3


class TestEstimateArea:
    def test_inverters_free(self):
        c = Circuit()
        a = c.input("a")
        c.output("y", c.not_(a))
        assert estimate_area(c).luts == 0

    def test_counts_logic(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.output("s", c.xor(a, b))
        c.output("c", c.and_(a, b))
        report = estimate_area(c)
        assert report.luts == 2
        assert report.slices == 1

    def test_empty(self):
        c = Circuit()
        c.input("a")
        report = estimate_area(c)
        assert report.luts == 0
        assert report.slices == 0

    def test_monotone_in_size(self):
        from repro.arith import build_array_multiplier

        small = estimate_area(build_array_multiplier(4))
        large = estimate_area(build_array_multiplier(8))
        assert large.luts > small.luts


class TestAreaReport:
    def test_overhead(self):
        a = AreaReport(luts=200, slices=80, gates=210)
        b = AreaReport(luts=100, slices=40, gates=105)
        assert a.overhead_vs(b) == pytest.approx(2.0)

    def test_overhead_zero_baseline(self):
        a = AreaReport(luts=200, slices=80, gates=210)
        zero = AreaReport(luts=0, slices=0, gates=0)
        with pytest.raises(ZeroDivisionError):
            a.overhead_vs(zero)
