"""Unit tests of the compiled engine: packing, caching, dispatch, validation."""

import numpy as np
import pytest

from repro.netlist.compiled import (
    BACKENDS,
    CompiledCircuit,
    circuit_fingerprint,
    clear_compile_cache,
    compile_cache_info,
    compile_circuit,
    evaluate_packed,
    make_simulator,
    resolve_backend,
)
from repro.netlist.delay import FpgaDelay, UnitDelay
from repro.netlist.gates import Circuit, Gate
from repro.netlist.packing import (
    lut_packed,
    pack_bits,
    packed_width,
    unpack_bits,
)
from repro.netlist.sim import WaveformSimulator, _eval_gate, evaluate


def _toy_circuit(name="toy"):
    c = Circuit(name)
    a, b, s = c.input("a"), c.input("b"), c.input("s")
    c.output("sum", c.gate("XOR", a, b))
    c.output("pick", c.mux(s, a, b))
    return c


# ------------------------------------------------------------------- packing

@pytest.mark.parametrize("n", [1, 5, 63, 64, 65, 130, 1000])
def test_pack_unpack_roundtrip(n):
    rng = np.random.default_rng(n)
    bits = rng.integers(0, 2, size=n).astype(np.uint8)
    packed = pack_bits(bits)
    assert packed.dtype == np.uint64
    assert packed.shape == (packed_width(n),)
    np.testing.assert_array_equal(unpack_bits(packed, n), bits)


def test_pack_bits_2d_rows():
    rng = np.random.default_rng(0)
    bits = rng.integers(0, 2, size=(4, 70)).astype(np.uint8)
    packed = pack_bits(bits)
    assert packed.shape == (4, packed_width(70))
    np.testing.assert_array_equal(unpack_bits(packed, 70), bits)


def test_lut_packed_table_validation():
    with pytest.raises(ValueError):
        lut_packed((0, 1, 1), [np.zeros(1, dtype=np.uint64)] * 1)
    with pytest.raises(ValueError):
        lut_packed((0, 1), [np.zeros(1, dtype=np.uint64)] * 2)


# ----------------------------------------------------- LUT validation (sim)

def test_eval_gate_rejects_missing_lut_table():
    ins = [np.zeros(4, dtype=np.uint8)]
    with pytest.raises(ValueError, match="missing its truth table"):
        _eval_gate("LUT", ins, None)


def test_eval_gate_rejects_wrong_lut_table_length():
    ins = [np.zeros(4, dtype=np.uint8), np.ones(4, dtype=np.uint8)]
    with pytest.raises(ValueError, match="must have 4 entries"):
        _eval_gate("LUT", ins, (0, 1))
    with pytest.raises(ValueError, match="must have 4 entries"):
        _eval_gate("LUT", ins, (0, 1, 1, 0, 1, 0, 0, 1))


def test_wave_simulator_surfaces_bad_lut_table():
    """A corrupted netlist fails loudly in both engines, not silently."""
    c = Circuit("bad_lut")
    a, b = c.input("a"), c.input("b")
    c.output("o", c.lut((0, 1, 1, 0), a, b))
    idx, gate = next(
        (i, g) for i, g in enumerate(c.gates) if g.op == "LUT"
    )
    c.gates[idx] = Gate(gate.op, gate.inputs, gate.output, (0, 1))
    with pytest.raises(ValueError, match="must have 4 entries"):
        WaveformSimulator(c, UnitDelay()).run({"a": 1, "b": 0})
    with pytest.raises(ValueError, match="LUT table must have 4"):
        CompiledCircuit(c, UnitDelay())


# ------------------------------------------------------------------- results

def test_packed_result_api():
    c = _toy_circuit()
    res = CompiledCircuit(c, UnitDelay()).run({"a": [1, 0, 1], "b": 1, "s": 0})
    assert res.num_samples == 3
    assert sorted(res.output_names) == ["pick", "sum"]
    raw = res.packed_waveform("sum")
    assert raw.dtype == np.uint64
    wf = res.waveform("sum")
    assert wf.dtype == np.uint8 and wf.shape == (res.settle_step + 1, 3)
    assert res.waveform("sum") is wf  # unpack is cached
    np.testing.assert_array_equal(res.final()["sum"], [0, 1, 0])
    np.testing.assert_array_equal(res.final()["pick"], [1, 0, 1])


def test_evaluate_packed_matches_evaluate():
    c = _toy_circuit()
    inputs = {"a": [0, 1, 0, 1], "b": [0, 0, 1, 1], "s": [1, 0, 1, 0]}
    ref = evaluate(c, inputs)
    got = compile_circuit(c).evaluate_packed(inputs)
    module_level = evaluate_packed(c, inputs)
    for name in ref:
        np.testing.assert_array_equal(got[name], ref[name])
        np.testing.assert_array_equal(module_level[name], ref[name])


# --------------------------------------------------------------------- cache

def test_compile_cache_hits_and_lru():
    clear_compile_cache()
    c = _toy_circuit()
    first = compile_circuit(c, UnitDelay())
    again = compile_circuit(c, UnitDelay())
    assert again is first
    info = compile_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    # a different delay assignment is a different engine
    other = compile_circuit(c, FpgaDelay())
    assert other is not first
    assert compile_cache_info()["misses"] == 2
    # structurally identical circuits share the cache entry
    twin = _toy_circuit()
    assert compile_circuit(twin, UnitDelay()) is first
    clear_compile_cache()
    assert compile_cache_info() == {
        "hits": 0, "misses": 0, "size": 0,
        "max_size": compile_cache_info()["max_size"],
    }


def test_fingerprint_tracks_mutation():
    c = _toy_circuit()
    fp1 = circuit_fingerprint(c)
    assert circuit_fingerprint(c) == fp1  # memoised
    c.output("extra", c.gate("AND", 0, 1))
    assert circuit_fingerprint(c) != fp1
    assert circuit_fingerprint(_toy_circuit()) == fp1


# ------------------------------------------------------------------ dispatch

def test_resolve_backend():
    for name in BACKENDS:
        assert resolve_backend(name) == name
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("quantum")


def test_make_simulator_dispatch():
    c = _toy_circuit()
    assert isinstance(make_simulator(c, backend="wave"), WaveformSimulator)
    assert isinstance(make_simulator(c, backend="packed"), CompiledCircuit)
    assert isinstance(make_simulator(c, backend="auto"), CompiledCircuit)
    with pytest.raises(ValueError):
        make_simulator(c, backend="nope")


def test_make_simulator_falls_back_on_compile_failure(monkeypatch):
    import repro.netlist.compiled as mod

    def boom(circuit, delay_model=None):
        raise RuntimeError("compile exploded")

    monkeypatch.setattr(mod, "compile_circuit", boom)
    sim = mod.make_simulator(_toy_circuit(), backend="packed")
    assert isinstance(sim, WaveformSimulator)


def test_levelization_exposed():
    c = _toy_circuit()
    compiled = CompiledCircuit(c, UnitDelay())
    assert compiled.num_levels >= 1
    assert compiled.settle_step == max(compiled.arrival)
