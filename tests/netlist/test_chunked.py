"""Tests for chunked waveform simulation."""

import numpy as np
import pytest

from repro.arith import build_ripple_carry_adder
from repro.netlist.delay import UnitDelay
from repro.netlist.sim import WaveformSimulator, run_chunked


@pytest.fixture(scope="module")
def setup():
    circuit = build_ripple_carry_adder(6)
    sim = WaveformSimulator(circuit, UnitDelay())
    rng = np.random.default_rng(9)
    ins = {}
    for name in ("a", "b"):
        vals = rng.integers(0, 64, 103)
        for i in range(6):
            ins[f"{name}{i}"] = ((vals >> i) & 1).astype(np.uint8)
    return sim, ins


class TestRunChunked:
    @pytest.mark.parametrize("chunk", [1, 7, 50, 103, 1000])
    def test_equals_monolithic(self, setup, chunk):
        sim, ins = setup
        full = sim.run(ins)
        pieces = run_chunked(sim, ins, chunk)
        assert pieces.num_samples == full.num_samples
        assert pieces.settle_step == full.settle_step
        for name in full.output_names:
            assert np.array_equal(full.waveform(name), pieces.waveform(name))

    def test_scalar_inputs_broadcast(self, setup):
        sim, _ins = setup
        ins = {f"a{i}": np.array([1]) for i in range(6)}
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 64, 20)
        for i in range(6):
            ins[f"b{i}"] = ((vals >> i) & 1).astype(np.uint8)
        res = run_chunked(sim, ins, 8)
        assert res.num_samples == 20

    def test_keep_filter(self, setup):
        sim, ins = setup
        res = run_chunked(sim, ins, 25, keep=["cout"])
        assert res.output_names == ["cout"]

    def test_invalid_chunk(self, setup):
        sim, ins = setup
        with pytest.raises(ValueError):
            run_chunked(sim, ins, 0)

    def test_mismatched_sizes(self, setup):
        sim, ins = setup
        bad = dict(ins)
        bad["a0"] = np.zeros(7, dtype=np.uint8)
        with pytest.raises(ValueError):
            run_chunked(sim, bad, 10)
