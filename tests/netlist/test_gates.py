"""Unit tests for the circuit graph and builder API."""

import pytest

from repro.netlist.gates import OPS, Circuit


class TestBuilder:
    def test_half_adder_structure(self):
        c = Circuit("ha")
        a, b = c.input("a"), c.input("b")
        s, carry = c.half_adder(a, b)
        c.output("s", s)
        c.output("c", carry)
        assert c.num_gates == 2
        assert c.num_nets == 4
        c.validate()

    def test_unknown_op(self):
        c = Circuit()
        a = c.input("a")
        with pytest.raises(ValueError):
            c.gate("FROB", a)

    def test_fanin_bounds(self):
        c = Circuit()
        a = c.input("a")
        with pytest.raises(ValueError):
            c.gate("AND", a)  # needs >= 2
        with pytest.raises(ValueError):
            c.gate("MAJ", a, a)  # needs exactly 3

    def test_undriven_net_rejected(self):
        c = Circuit()
        c.input("a")
        with pytest.raises(ValueError):
            c.gate("NOT", 99)

    def test_duplicate_output_name(self):
        c = Circuit()
        a = c.input("a")
        c.output("y", a)
        with pytest.raises(ValueError):
            c.output("y", a)

    def test_inputs_helper_names(self):
        c = Circuit()
        nets = c.inputs(3, "x")
        assert c.input_names == ["x0", "x1", "x2"]
        assert nets == c.input_nets

    def test_fanout_count(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.and_(a, b)
        c.or_(a, b)
        assert c.fanout_of(a) == 2

    def test_driver_of(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        out = c.xor(a, b)
        assert c.driver_of(out).op == "XOR"
        assert c.driver_of(a) is None

    def test_stats(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.output("y", c.and_(a, b))
        stats = c.stats()
        assert stats["AND"] == 1
        assert stats["inputs"] == 2
        assert stats["outputs"] == 1


class TestLut:
    def test_lut_requires_table(self):
        c = Circuit()
        a = c.input("a")
        with pytest.raises(ValueError):
            c.gate("LUT", a)

    def test_lut_table_size_check(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        with pytest.raises(ValueError):
            c.lut([0, 1], a, b)  # needs 4 entries

    def test_lut_table_binary_check(self):
        c = Circuit()
        a = c.input("a")
        with pytest.raises(ValueError):
            c.lut([0, 2], a)

    def test_non_lut_rejects_table(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        with pytest.raises(ValueError):
            c.gate("AND", a, b, table=[0, 0, 0, 1])

    def test_lut_max_fanin(self):
        c = Circuit()
        nets = c.inputs(7)
        with pytest.raises(ValueError):
            c.lut([0] * 128, *nets)


class TestOpsTable:
    def test_every_op_has_bounds(self):
        for op, (lo, hi) in OPS.items():
            assert lo >= 0
            assert hi is None or hi >= lo
