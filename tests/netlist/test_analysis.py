"""Tests for netlist analysis utilities."""

import pytest

from repro.arith import build_array_multiplier, build_ripple_carry_adder
from repro.core.online_multiplier import build_online_multiplier
from repro.netlist.analysis import (
    arrival_order,
    depth_histogram,
    fanout_statistics,
    output_arrival_profile,
    slack_histogram,
    violated_outputs,
)
from repro.netlist.delay import UnitDelay
from repro.netlist.sta import static_timing


class TestArrivalProfile:
    def test_rca_msb_arrives_last(self):
        c = build_ripple_carry_adder(8)
        profile = output_arrival_profile(c, UnitDelay())
        assert profile["s7"] > profile["s1"]
        assert profile["cout"] == max(profile.values())

    def test_online_multiplier_msd_arrives_first(self):
        """The MSD-first property, read straight off static timing."""
        c = build_online_multiplier(8)
        order = arrival_order(c, [f"zp{k}" for k in range(8)], UnitDelay())
        names = [n for n, _t in order]
        # the first-arriving digit is among the most significant ones, the
        # last-arriving among the least significant
        assert int(names[0][2:]) <= 2
        assert int(names[-1][2:]) >= 5

    def test_arrival_order_unknown_output(self):
        c = build_ripple_carry_adder(2)
        with pytest.raises(ValueError):
            arrival_order(c, ["nope"])


class TestSlack:
    def test_slack_signs(self):
        c = build_ripple_carry_adder(6)
        critical = static_timing(c, UnitDelay()).critical_delay
        slack = slack_histogram(c, critical, UnitDelay())
        assert min(slack.values()) == 0
        tight = slack_histogram(c, critical - 2, UnitDelay())
        assert min(tight.values()) == -2

    def test_violated_outputs_are_msbs_for_rca(self):
        c = build_ripple_carry_adder(8)
        critical = static_timing(c, UnitDelay()).critical_delay
        bad = violated_outputs(c, critical - 1, UnitDelay())
        assert "cout" in bad
        assert "s0" not in bad

    def test_no_violations_at_rated(self):
        c = build_array_multiplier(4)
        critical = static_timing(c, UnitDelay()).critical_delay
        assert violated_outputs(c, critical, UnitDelay()) == []


class TestStructure:
    def test_depth_histogram_covers_all_nets(self):
        c = build_array_multiplier(4)
        hist = depth_histogram(c, UnitDelay())
        assert sum(hist.values()) == c.num_nets
        assert max(hist) == static_timing(c, UnitDelay()).critical_delay

    def test_fanout_statistics(self):
        c = build_ripple_carry_adder(4)
        stats = fanout_statistics(c)
        assert stats.max_fanout >= 2  # operand bits feed sum and carry
        assert stats.mean_fanout > 0
        assert stats.dangling_nets >= 0
