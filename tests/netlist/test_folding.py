"""Tests for the constant-propagation pass in Circuit.gate."""

import itertools
import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.gates import Circuit
from repro.netlist.sim import evaluate


def _logic_gate_count(c: Circuit) -> int:
    """LUT-class gates only: constants and inverters map for free, and
    folding may legally trade one MUX for NOT + OR."""
    return sum(
        1 for g in c.gates if g.op not in ("CONST0", "CONST1", "NOT", "BUF")
    )


class TestBasicFolds:
    def test_const_nets_cached(self):
        c = Circuit()
        assert c.const0() == c.const0()
        assert c.const1() == c.const1()

    def test_and_absorbs(self):
        c = Circuit()
        a = c.input("a")
        assert c.and_(a, c.const0()) == c.const0()
        assert c.and_(a, c.const1()) == a
        assert _logic_gate_count(c) == 0

    def test_or_absorbs(self):
        c = Circuit()
        a = c.input("a")
        assert c.or_(a, c.const1()) == c.const1()
        assert c.or_(a, c.const0()) == a

    def test_xor_parity(self):
        c = Circuit()
        a = c.input("a")
        out = c.xor(a, c.const1())  # NOT a
        c.output("y", out)
        got = evaluate(c, {"a": [0, 1]})["y"]
        assert got.tolist() == [1, 0]

    def test_xor_duplicate_cancels(self):
        c = Circuit()
        a = c.input("a")
        assert c.xor(a, a) == c.const0()

    def test_and_duplicate_dedupes(self):
        c = Circuit()
        a = c.input("a")
        assert c.and_(a, a) == a

    def test_nand_nor(self):
        c = Circuit()
        a = c.input("a")
        assert c.gate("NAND", a, c.const0()) == c.const1()
        assert c.gate("NOR", a, c.const1()) == c.const0()
        # single live input -> inverter
        y = c.gate("NAND", a, c.const1())
        c.output("y", y)
        assert evaluate(c, {"a": [0, 1]})["y"].tolist() == [1, 0]

    def test_not_of_const(self):
        c = Circuit()
        assert c.not_(c.const0()) == c.const1()

    def test_maj_folds(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        assert c.gate("MAJ", a, c.const1(), c.const1()) == c.const1()
        assert c.gate("MAJ", a, c.const0(), c.const0()) == c.const0()
        assert c.gate("MAJ", a, c.const0(), c.const1()) == a
        # one const -> AND / OR
        y_and = c.gate("MAJ", a, b, c.const0())
        y_or = c.gate("MAJ", a, b, c.const1())
        c.output("and", y_and)
        c.output("or", y_or)
        out = evaluate(c, {"a": [0, 1, 1], "b": [1, 0, 1]})
        assert out["and"].tolist() == [0, 0, 1]
        assert out["or"].tolist() == [1, 1, 1]

    def test_mux_folds(self):
        c = Circuit()
        a, b, s = c.input("a"), c.input("b"), c.input("s")
        assert c.mux(c.const0(), a, b) == a
        assert c.mux(c.const1(), a, b) == b
        assert c.mux(s, c.const0(), c.const1()) == s
        y = c.mux(s, c.const1(), c.const0())  # NOT s
        c.output("nots", y)
        y2 = c.mux(s, c.const0(), b)  # s & b
        c.output("sandb", y2)
        out = evaluate(c, {"a": 0, "b": [1, 1, 0], "s": [0, 1, 1]})
        assert out["nots"].tolist() == [1, 0, 0]
        assert out["sandb"].tolist() == [0, 1, 0]

    def test_lut_shrinks(self):
        c = Circuit()
        a = c.input("a")
        # 2-input AND with b tied to 1 -> wire to a
        assert c.lut([0, 0, 0, 1], a, c.const1()) == a
        # 2-input AND with b tied to 0 -> const 0
        assert c.lut([0, 0, 0, 1], a, c.const0()) == c.const0()

    def test_buf_is_wire(self):
        c = Circuit()
        a = c.input("a")
        assert c.gate("BUF", a) == a

    def test_folding_disabled(self):
        c = Circuit(fold_constants=False)
        a = c.input("a")
        out = c.and_(a, c.const1())
        assert out != a  # a real gate was emitted
        c.output("y", out)
        assert evaluate(c, {"a": [0, 1]})["y"].tolist() == [0, 1]


class TestFoldingEquivalence:
    """Folded and unfolded builds of random circuits must agree."""

    OPS = ["AND", "OR", "XOR", "NAND", "NOR", "XNOR", "MAJ", "MUX", "NOT"]

    def _build(self, circuit, recipe, n_inputs):
        nets = [circuit.input(f"i{k}") for k in range(n_inputs)]
        pool = list(nets) + [circuit.const0(), circuit.const1()]
        for op, picks in recipe:
            if op == "NOT":
                net = circuit.gate("NOT", pool[picks[0] % len(pool)])
            elif op in ("MAJ", "MUX"):
                net = circuit.gate(op, *(pool[p % len(pool)] for p in picks[:3]))
            else:
                net = circuit.gate(op, *(pool[p % len(pool)] for p in picks[:2]))
            pool.append(net)
        circuit.output("y", pool[-1])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(OPS),
                st.lists(st.integers(0, 40), min_size=3, max_size=3),
            ),
            min_size=1,
            max_size=25,
        ),
        st.integers(2, 4),
    )
    def test_random_circuits(self, recipe, n_inputs):
        folded = Circuit(fold_constants=True)
        plain = Circuit(fold_constants=False)
        self._build(folded, recipe, n_inputs)
        self._build(plain, recipe, n_inputs)
        vectors = {
            f"i{k}": np.array(
                [(pattern >> k) & 1 for pattern in range(2**n_inputs)],
                dtype=np.uint8,
            )
            for k in range(n_inputs)
        }
        out_f = evaluate(folded, vectors)["y"]
        out_p = evaluate(plain, vectors)["y"]
        assert np.array_equal(out_f, out_p)
        assert _logic_gate_count(folded) <= _logic_gate_count(plain)


class TestFoldingOnOperators:
    def test_multiplier_by_zero_collapses(self):
        from repro.arith.array_multiplier import array_multiplier

        c = Circuit()
        a = c.inputs(6, "a")
        zero = c.const0()
        product = array_multiplier(c, a, [zero] * 6)
        for net in product:
            assert net == c.const0()

    def test_multiplier_by_constant_shrinks(self):
        from repro.arith.array_multiplier import array_multiplier

        full = Circuit()
        a = full.inputs(8, "a")
        b = full.inputs(8, "b")
        array_multiplier(full, a, b)

        folded = Circuit()
        a2 = folded.inputs(8, "a")
        one = folded.const1()
        zero = folded.const0()
        # multiply by 0b00000110 (= 6)
        const_bits = [zero, one, one, zero, zero, zero, zero, zero]
        array_multiplier(folded, a2, const_bits)
        assert _logic_gate_count(folded) < 0.5 * _logic_gate_count(full)

    def test_constant_multiply_correct(self):
        from repro.arith.array_multiplier import array_multiplier

        c = Circuit()
        a_bits = c.inputs(5, "a")
        one, zero = c.const1(), c.const0()
        const_bits = [one, one, zero, zero, zero]  # multiply by 3
        product = array_multiplier(c, a_bits, const_bits)
        for i, net in enumerate(product):
            c.output(f"p{i}", net)
        values = np.arange(-16, 16)
        raw = values % 32
        ins = {f"a{i}": ((raw >> i) & 1).astype(np.uint8) for i in range(5)}
        out = evaluate(c, ins)
        got = sum(out[f"p{i}"].astype(np.int64) << i for i in range(10))
        got = np.where(got >= 512, got - 1024, got)
        assert np.array_equal(got, values * 3)
