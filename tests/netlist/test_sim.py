"""Unit and property tests for the waveform simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist.delay import FpgaDelay, PerOpDelay, UnitDelay
from repro.netlist.gates import Circuit
from repro.netlist.sim import WaveformSimulator, evaluate


def _xor_chain(length: int) -> Circuit:
    c = Circuit("xorchain")
    a = c.input("a")
    b = c.input("b")
    net = a
    for _ in range(length):
        net = c.xor(net, b)
    c.output("y", net)
    return c


class TestEvaluate:
    def test_basic_gates(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.output("and", c.and_(a, b))
        c.output("or", c.or_(a, b))
        c.output("xor", c.xor(a, b))
        c.output("not", c.not_(a))
        out = evaluate(c, {"a": [0, 0, 1, 1], "b": [0, 1, 0, 1]})
        assert out["and"].tolist() == [0, 0, 0, 1]
        assert out["or"].tolist() == [0, 1, 1, 1]
        assert out["xor"].tolist() == [0, 1, 1, 0]
        assert out["not"].tolist() == [1, 1, 0, 0]

    def test_maj_and_mux(self):
        c = Circuit()
        a, b, s = c.input("a"), c.input("b"), c.input("s")
        c.output("maj", c.gate("MAJ", a, b, s))
        c.output("mux", c.mux(s, a, b))
        out = evaluate(
            c,
            {
                "a": [0, 1, 0, 1, 0, 1],
                "b": [0, 0, 1, 1, 1, 0],
                "s": [0, 0, 0, 0, 1, 1],
            },
        )
        assert out["maj"].tolist() == [0, 0, 0, 1, 1, 1]
        # mux: sel=0 -> a, sel=1 -> b
        assert out["mux"].tolist() == [0, 1, 0, 1, 1, 0]

    def test_lut(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        # table for a AND (NOT b): idx = a + 2b
        c.output("y", c.lut([0, 1, 0, 0], a, b))
        out = evaluate(c, {"a": [0, 1, 0, 1], "b": [0, 0, 1, 1]})
        assert out["y"].tolist() == [0, 1, 0, 0]

    def test_constants(self):
        c = Circuit()
        c.input("a")
        c.output("zero", c.const0())
        c.output("one", c.const1())
        out = evaluate(c, {"a": [0, 1]})
        assert out["zero"].tolist() == [0, 0]
        assert out["one"].tolist() == [1, 1]

    def test_scalar_broadcast(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.output("y", c.and_(a, b))
        out = evaluate(c, {"a": 1, "b": [0, 1, 1]})
        assert out["y"].tolist() == [0, 1, 1]

    def test_missing_input_rejected(self):
        c = Circuit()
        c.input("a")
        c.input("b")
        with pytest.raises(ValueError):
            evaluate(c, {"a": [1]})

    def test_unknown_input_rejected(self):
        c = Circuit()
        c.input("a")
        with pytest.raises(ValueError):
            evaluate(c, {"a": [1], "zz": [0]})

    def test_non_binary_rejected(self):
        c = Circuit()
        a = c.input("a")
        c.output("y", c.not_(a))
        with pytest.raises(ValueError):
            evaluate(c, {"a": [2]})


class TestWaveforms:
    def test_final_matches_evaluate(self):
        c = _xor_chain(5)
        ins = {"a": [0, 1, 0, 1], "b": [0, 0, 1, 1]}
        ref = evaluate(c, ins)
        sim = WaveformSimulator(c, UnitDelay())
        res = sim.run(ins)
        assert np.array_equal(res.final()["y"], ref["y"])

    def test_settle_equals_chain_length(self):
        c = _xor_chain(7)
        sim = WaveformSimulator(c, UnitDelay())
        assert sim.settle_step == 7

    def test_reset_state_is_zero(self):
        c = _xor_chain(3)
        sim = WaveformSimulator(c, UnitDelay())
        res = sim.run({"a": [1], "b": [0]})
        assert res.sample(0)["y"].tolist() == [0]

    def test_intermediate_wave_propagation(self):
        # y = NOT(NOT(NOT a)): with unit delays, y(t) shows the wave
        c = Circuit()
        a = c.input("a")
        n1 = c.gate("NOT", a)
        n2 = c.gate("NOT", n1)
        c.output("y", c.gate("NOT", n2))
        sim = WaveformSimulator(c, PerOpDelay({"NOT": 1}))
        res = sim.run({"a": [0]})
        # reset 0; the inversion wave ripples through: 0 -> 1 -> 0 -> 1
        assert res.waveform("y")[:, 0].tolist()[:4] == [0, 1, 0, 1]

    def test_sample_clamps(self):
        c = _xor_chain(2)
        sim = WaveformSimulator(c, UnitDelay())
        res = sim.run({"a": [1], "b": [1]})
        assert res.sample(10**6)["y"] == res.final()["y"]
        assert res.sample(-5)["y"].tolist() == [0]

    def test_sample_bits_stacks(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.output("y0", c.and_(a, b))
        c.output("y1", c.or_(a, b))
        res = WaveformSimulator(c).run({"a": [1, 0], "b": [1, 1]})
        stacked = res.sample_bits(["y0", "y1"], 5)
        assert stacked.shape == (2, 2)

    def test_keep_filters_outputs(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.output("y0", c.and_(a, b))
        c.output("y1", c.or_(a, b))
        res = WaveformSimulator(c).run({"a": [1], "b": [1]}, keep=["y1"])
        assert res.output_names == ["y1"]
        with pytest.raises(KeyError):
            res.waveform("y0")

    def test_keep_unknown_rejected(self):
        c = _xor_chain(1)
        with pytest.raises(ValueError):
            WaveformSimulator(c).run({"a": [1], "b": [1]}, keep=["nope"])

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 255), st.integers(0, 255))
    def test_fpga_delays_preserve_function(self, av, bv):
        from repro.arith import build_ripple_carry_adder

        c = build_ripple_carry_adder(8)
        ins = {}
        for i in range(8):
            ins[f"a{i}"] = [(av >> i) & 1]
            ins[f"b{i}"] = [(bv >> i) & 1]
        res = WaveformSimulator(c, FpgaDelay()).run(ins)
        fin = res.final()
        total = sum(int(fin[f"s{i}"][0]) << i for i in range(8))
        total += int(fin["cout"][0]) << 8
        assert total == av + bv

    def test_overclocked_sample_differs_then_settles(self):
        c = _xor_chain(10)
        sim = WaveformSimulator(c, UnitDelay())
        res = sim.run({"a": [1], "b": [1]})
        # a=1,b=1: XOR chain flips parity; early samples show reset values
        assert res.sample(0)["y"][0] == 0
        assert res.sample(res.settle_step)["y"][0] == res.final()["y"][0]
