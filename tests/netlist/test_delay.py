"""Unit tests for delay models."""

from repro.netlist.delay import FpgaDelay, PerOpDelay, UnitDelay
from repro.netlist.gates import Circuit


def _small_circuit() -> Circuit:
    c = Circuit("dm")
    a, b = c.input("a"), c.input("b")
    n = c.and_(a, b)
    n = c.not_(n)
    n = c.xor(n, a)
    c.output("y", n)
    c.output("zero", c.const0())
    return c


class TestUnitDelay:
    def test_logic_costs_one(self):
        c = _small_circuit()
        delays = UnitDelay().assign(c)
        by_op = dict(zip((g.op for g in c.gates), delays))
        assert by_op["AND"] == 1
        assert by_op["XOR"] == 1

    def test_not_free_by_default(self):
        c = _small_circuit()
        delays = UnitDelay().assign(c)
        by_op = dict(zip((g.op for g in c.gates), delays))
        assert by_op["NOT"] == 0

    def test_not_costly_when_configured(self):
        c = _small_circuit()
        delays = UnitDelay(free_not=False).assign(c)
        by_op = dict(zip((g.op for g in c.gates), delays))
        assert by_op["NOT"] == 1

    def test_constants_free(self):
        c = _small_circuit()
        delays = UnitDelay().assign(c)
        by_op = dict(zip((g.op for g in c.gates), delays))
        assert by_op["CONST0"] == 0


class TestPerOpDelay:
    def test_table_and_default(self):
        c = _small_circuit()
        delays = PerOpDelay({"AND": 3}, default=2).assign(c)
        by_op = dict(zip((g.op for g in c.gates), delays))
        assert by_op["AND"] == 3
        assert by_op["XOR"] == 2


class TestFpgaDelay:
    def test_deterministic_per_circuit(self):
        c = _small_circuit()
        model = FpgaDelay(seed=7)
        assert list(model.assign(c)) == list(model.assign(c))

    def test_seed_changes_assignment(self):
        c = Circuit("many")
        nets = c.inputs(2)
        n = nets[0]
        for _ in range(64):
            n = c.xor(n, nets[1])
        c.output("y", n)
        d1 = list(FpgaDelay(seed=1).assign(c))
        d2 = list(FpgaDelay(seed=2).assign(c))
        assert d1 != d2

    def test_delays_within_bounds(self):
        c = _small_circuit()
        model = FpgaDelay(base=3, jitter_min=1, jitter_max=2)
        for gate, d in zip(c.gates, model.assign(c)):
            if gate.op in ("CONST0", "NOT"):
                assert d == 0
            else:
                assert 4 <= d <= 5

    def test_invalid_parameters(self):
        import pytest

        with pytest.raises(ValueError):
            FpgaDelay(base=0)
        with pytest.raises(ValueError):
            FpgaDelay(jitter_min=3, jitter_max=1)

    def test_quanta_per_unit(self):
        assert FpgaDelay(base=3, jitter_min=0, jitter_max=2).quanta_per_unit == 4


class TestCarryChainDelay:
    def test_ripple_chain_accelerated(self):
        from repro.arith import build_ripple_carry_adder
        from repro.netlist.delay import CarryChainDelay
        from repro.netlist.sta import static_timing

        rca = build_ripple_carry_adder(16)
        plain = static_timing(rca, FpgaDelay(jitter_min=1, jitter_max=1))
        chained = static_timing(
            rca, CarryChainDelay(jitter_min=1, jitter_max=1, carry_cost=1)
        )
        # the 16-bit carry chain collapses to ~1 quantum per bit
        assert chained.critical_delay < plain.critical_delay / 2

    def test_isolated_maj_keeps_lut_cost(self):
        from repro.netlist.delay import CarryChainDelay
        from repro.netlist.gates import Circuit

        c = Circuit()
        a, b, d = c.input("a"), c.input("b"), c.input("d")
        c.output("m", c.gate("MAJ", a, b, d))
        delays = CarryChainDelay(
            base=3, jitter_min=0, jitter_max=0, carry_cost=1
        ).assign(c)
        maj_delay = [
            dl for g, dl in zip(c.gates, delays) if g.op == "MAJ"
        ][0]
        assert maj_delay == 3  # not on a chain

    def test_parameter_validation(self):
        import pytest

        from repro.netlist.delay import CarryChainDelay

        with pytest.raises(ValueError):
            CarryChainDelay(base=0)
        with pytest.raises(ValueError):
            CarryChainDelay(carry_cost=-1)
        with pytest.raises(ValueError):
            CarryChainDelay(jitter_min=5, jitter_max=1)

    def test_deterministic(self):
        from repro.arith import build_array_multiplier
        from repro.netlist.delay import CarryChainDelay

        c = build_array_multiplier(5)
        model = CarryChainDelay(seed=3)
        assert list(model.assign(c)) == list(model.assign(c))
