"""Cross-engine equivalence: compiled bit-packed sim vs WaveformSimulator.

The packed engine's whole claim is *bit-for-bit* agreement with the
reference interpreter at every time step.  This suite enforces it on two
fronts:

* a seeded random-circuit generator (every op, random fanin/fanout,
  LUT tables, constants, rotating delay models, batch sizes straddling
  the 64-sample word boundary) — 200+ circuits;
* the real operator netlists the experiments run on (online multiplier,
  ripple-carry adder, array multiplier) at several word lengths.

Everything is compared: ``settle_step``, every waveform row, ``sample``
(including its clamping behaviour), ``final``, ``sample_bits``, and
``run_chunked`` stitching.
"""

import numpy as np
import pytest

from repro.arith.array_multiplier import build_array_multiplier
from repro.arith.ripple_carry import build_ripple_carry_adder
from repro.core.online_multiplier import OnlineMultiplier
from repro.netlist.compiled import CompiledCircuit, compile_circuit
from repro.netlist.delay import FpgaDelay, PerOpDelay, UnitDelay
from repro.netlist.gates import Circuit
from repro.netlist.sim import WaveformSimulator, run_chunked

# ops the generator draws from, roughly weighted like real netlists
_GEN_OPS = [
    "AND", "AND", "OR", "XOR", "XOR", "NAND", "NOR", "XNOR",
    "NOT", "BUF", "MAJ", "MAJ", "MUX", "MUX", "LUT", "LUT",
    "CONST0", "CONST1",
]

#: delay models rotated across the random circuits
_DELAY_MODELS = [
    lambda i: UnitDelay(),
    lambda i: UnitDelay(free_not=False),
    lambda i: PerOpDelay({"XOR": 2, "MAJ": 3, "LUT": 2}, default=1),
    lambda i: FpgaDelay(seed=1000 + i),
]

#: batch sizes straddling the 64-samples-per-word boundary
_BATCH_SIZES = [1, 3, 63, 64, 65, 128, 200]


def random_circuit(seed: int) -> Circuit:
    """A random feed-forward DAG exercising every primitive op."""
    rng = np.random.default_rng(seed)
    fold = bool(rng.integers(0, 2))
    c = Circuit(f"rand{seed}", fold_constants=fold)
    nets = [c.input(f"i{k}") for k in range(int(rng.integers(2, 7)))]
    for _ in range(int(rng.integers(5, 41))):
        op = _GEN_OPS[int(rng.integers(0, len(_GEN_OPS)))]
        if op in ("CONST0", "CONST1"):
            nets.append(c.gate(op))
            continue
        if op in ("NOT", "BUF"):
            fanin = 1
        elif op in ("MAJ", "MUX"):
            fanin = 3
        elif op == "LUT":
            fanin = int(rng.integers(1, 5))
        else:
            fanin = int(rng.integers(2, 5))
        ins = [nets[int(rng.integers(0, len(nets)))] for _ in range(fanin)]
        if op == "LUT":
            table = rng.integers(0, 2, size=2**fanin).tolist()
            nets.append(c.gate(op, *ins, table=table))
        else:
            nets.append(c.gate(op, *ins))
    # expose a handful of random nets plus the last one as outputs
    picks = {nets[-1]}
    for _ in range(int(rng.integers(1, 5))):
        picks.add(nets[int(rng.integers(0, len(nets)))])
    for k, net in enumerate(sorted(picks)):
        c.output(f"o{k}", net)
    return c


def assert_equivalent(circuit, delay_model, num_samples, seed=7):
    """Exhaustive packed-vs-wave comparison on one random batch."""
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.integers(0, 2, size=num_samples).astype(np.uint8)
        for name in circuit.input_names
    }
    wave = WaveformSimulator(circuit, delay_model)
    packed = CompiledCircuit(circuit, delay_model)
    assert packed.settle_step == wave.settle_step
    assert packed.delays == wave.delays
    assert packed.arrival == wave.arrival

    ref = wave.run(inputs)
    res = packed.run(inputs)
    assert res.settle_step == ref.settle_step
    assert res.num_samples == ref.num_samples == num_samples
    assert sorted(res.output_names) == sorted(ref.output_names)
    for name in ref.output_names:
        np.testing.assert_array_equal(
            res.waveform(name), ref.waveform(name), err_msg=name
        )
    # sample() including clamping below 0 and beyond the settle point
    for step in (-3, 0, 1, ref.settle_step // 2, ref.settle_step,
                 ref.settle_step + 5):
        got, want = res.sample(step), ref.sample(step)
        for name in want:
            np.testing.assert_array_equal(got[name], want[name])
    for name, got in res.final().items():
        np.testing.assert_array_equal(got, ref.final()[name])
    names = sorted(ref.output_names)
    np.testing.assert_array_equal(
        res.sample_bits(names, 1), ref.sample_bits(names, 1)
    )
    return ref, res


@pytest.mark.parametrize("group", range(20))
def test_random_circuits_bit_for_bit(group):
    """200 random circuits, rotating delay models and batch sizes."""
    for j in range(10):
        i = group * 10 + j
        circuit = random_circuit(seed=i)
        delay_model = _DELAY_MODELS[i % len(_DELAY_MODELS)](i)
        num_samples = _BATCH_SIZES[i % len(_BATCH_SIZES)]
        assert_equivalent(circuit, delay_model, num_samples, seed=i)


@pytest.mark.parametrize("ndigits", [4, 8, 12])
def test_online_multiplier_netlist(ndigits):
    circuit = OnlineMultiplier(ndigits).build_circuit()
    assert_equivalent(circuit, FpgaDelay(), 130, seed=ndigits)
    assert_equivalent(circuit, UnitDelay(), 64, seed=ndigits)


@pytest.mark.parametrize("width", [4, 8, 12])
def test_ripple_carry_netlist(width):
    circuit = build_ripple_carry_adder(width)
    assert_equivalent(circuit, FpgaDelay(), 65, seed=width)
    assert_equivalent(circuit, UnitDelay(free_not=False), 100, seed=width)


@pytest.mark.parametrize("width", [4, 6])
def test_array_multiplier_netlist(width):
    circuit = build_array_multiplier(width)
    assert_equivalent(circuit, FpgaDelay(), 96, seed=width)


def test_run_chunked_stitching_matches_wave():
    """run_chunked over the packed engine stitches exactly like the wave sim."""
    circuit = OnlineMultiplier(4).build_circuit()
    rng = np.random.default_rng(11)
    inputs = {
        name: rng.integers(0, 2, size=150).astype(np.uint8)
        for name in circuit.input_names
    }
    wave = WaveformSimulator(circuit, FpgaDelay())
    packed = compile_circuit(circuit, FpgaDelay())
    ref = run_chunked(wave, inputs, chunk_size=40)
    res = run_chunked(packed, inputs, chunk_size=40)
    whole = packed.run(inputs)
    assert res.settle_step == ref.settle_step
    assert res.num_samples == 150
    for name in ref.output_names:
        np.testing.assert_array_equal(res.waveform(name), ref.waveform(name))
        np.testing.assert_array_equal(res.waveform(name), whole.waveform(name))


def test_keep_subset_matches():
    """keep= retains the same subset with identical contents."""
    circuit = OnlineMultiplier(4).build_circuit()
    some = sorted(circuit.output_map)[:3]
    rng = np.random.default_rng(3)
    inputs = {
        name: rng.integers(0, 2, size=70).astype(np.uint8)
        for name in circuit.input_names
    }
    ref = WaveformSimulator(circuit, UnitDelay()).run(inputs, keep=some)
    res = compile_circuit(circuit, UnitDelay()).run(inputs, keep=some)
    assert sorted(res.output_names) == sorted(ref.output_names) == some
    for name in some:
        np.testing.assert_array_equal(res.waveform(name), ref.waveform(name))
