"""Tests for the structural Verilog exporter.

Without a simulator available offline, correctness is checked by parsing
the emitted text back into a tiny evaluator and comparing against the
circuit's own simulation on exhaustive/random vectors.
"""

import re

import numpy as np
import pytest

from repro.arith import build_ripple_carry_adder
from repro.core.online_multiplier import build_online_multiplier
from repro.netlist.gates import Circuit
from repro.netlist.sim import evaluate
from repro.netlist.verilog import to_verilog

_ASSIGN = re.compile(r"^\s*assign\s+(\w+)\s*=\s*(.+);\s*$")
_LOCALPARAM = re.compile(
    r"^\s*localparam\s*\[\d+:0\]\s*(\w+)\s*=\s*\d+'b([01]+);\s*$"
)


def _mini_verilog_eval(source: str, inputs: dict) -> dict:
    """Evaluate the exported netlist with Python semantics.

    Supports exactly the expression forms the exporter emits: ~, &, |, ^,
    ternary, literals, and LUT indexing with concatenated selects.
    """
    env = dict(inputs)
    params = {}
    for line in source.splitlines():
        mp = _LOCALPARAM.match(line)
        if mp:
            name, bits = mp.groups()
            params[name] = bits  # MSB first
            continue
        ma = _ASSIGN.match(line)
        if not ma:
            continue
        target, expr = ma.groups()
        env[target] = _eval_expr(expr.strip(), env, params)
    return env


def _eval_expr(expr: str, env: dict, params: dict) -> int:
    expr = expr.strip()
    lut = re.match(r"^(\w+)\[\{(.+)\}\]$", expr)
    if lut:
        param, sel = lut.groups()
        bits = [env[s.strip()] for s in sel.split(",")]  # MSB first
        idx = 0
        for b in bits:
            idx = (idx << 1) | b
        table = params[param]
        return int(table[len(table) - 1 - idx])
    if expr in ("1'b0", "1'b1"):
        return int(expr[-1])
    if expr in env:
        return env[expr]
    # python-ify: identifiers resolve through env; ?: becomes a ternary
    py = re.sub(r"(\w+)\s*\?\s*(\w+)\s*:\s*(\w+)", r"(\2 if \1 else \3)", expr)
    py = py.replace("~", "1^")
    names = set(re.findall(r"[A-Za-z_]\w*", py)) - {"if", "else"}
    local = {n: env[n] for n in names}
    return eval(py, {"__builtins__": {}}, local) & 1


class TestExport:
    def test_module_structure(self):
        c = build_ripple_carry_adder(3)
        text = to_verilog(c)
        assert text.startswith("// generated")
        assert "module rca3 (" in text
        assert text.rstrip().endswith("endmodule")
        assert "input  a0;" in text
        assert "output cout;" in text

    def test_adder_exhaustive_equivalence(self):
        c = build_ripple_carry_adder(3)
        text = to_verilog(c)
        for a in range(8):
            for b in range(8):
                ins = {}
                for i in range(3):
                    ins[f"a{i}"] = (a >> i) & 1
                    ins[f"b{i}"] = (b >> i) & 1
                env = _mini_verilog_eval(text, ins)
                total = sum(env[f"s{i}"] << i for i in range(3))
                total += env["cout"] << 3
                assert total == a + b, (a, b)

    def test_online_multiplier_export_with_luts(self):
        circuit = build_online_multiplier(4)
        text = to_verilog(circuit, module_name="om4")
        assert "module om4" in text
        assert "localparam" in text  # selection tables became LUT inits

        rng = np.random.default_rng(1)
        for _ in range(25):
            digits = rng.integers(-1, 2, size=(2, 4))
            ins = {}
            sim_ins = {}
            for k in range(4):
                for pre, row in (("x", 0), ("y", 1)):
                    d = int(digits[row, k])
                    ins[f"{pre}p{k}"] = 1 if d == 1 else 0
                    ins[f"{pre}n{k}"] = 1 if d == -1 else 0
                    sim_ins[f"{pre}p{k}"] = [ins[f"{pre}p{k}"]]
                    sim_ins[f"{pre}n{k}"] = [ins[f"{pre}n{k}"]]
            env = _mini_verilog_eval(text, ins)
            ref = evaluate(circuit, sim_ins)
            for k in range(4):
                assert env[f"zp{k}"] == int(ref[f"zp{k}"][0])
                assert env[f"zn{k}"] == int(ref[f"zn{k}"][0])

    def test_maj_and_mux_translation(self):
        c = Circuit("mm")
        a, b, s = c.input("a"), c.input("b"), c.input("s")
        c.output("maj", c.gate("MAJ", a, b, s))
        c.output("mux", c.mux(s, a, b))
        text = to_verilog(c)
        for av, bv, sv in [(0, 0, 0), (1, 0, 1), (1, 1, 0), (0, 1, 1)]:
            env = _mini_verilog_eval(text, {"a": av, "b": bv, "s": sv})
            assert env["maj"] == (1 if av + bv + sv >= 2 else 0)
            assert env["mux"] == (bv if sv else av)

    def test_port_sanitising(self):
        c = Circuit("weird name!")
        a = c.input("in-1")
        c.output("out.x", c.not_(a))
        text = to_verilog(c)
        assert "in_1" in text
        assert "out_x" in text

    def test_port_collision_rejected(self):
        c = Circuit()
        a = c.input("a.1")
        b = c.input("a-1")
        c.output("y", c.and_(a, b))
        with pytest.raises(ValueError):
            to_verilog(c)
