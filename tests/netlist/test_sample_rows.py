"""``sample_rows`` validation: one capture step per sample, every backend.

Before the shape check, a mismatched ``rows`` array produced
backend-dependent behavior — a cryptic broadcast error on the wave
engine, a silently *wrong-length* result on the packed engine (its
``np.unique`` gather sliced to ``len(rows)`` columns).  Both backends
must now raise the same ``ValueError``, naming themselves, and keep the
documented clamp semantics for step values.
"""

import numpy as np
import pytest

from repro.netlist.compiled import make_simulator
from repro.netlist.delay import UnitDelay
from tests.netlist.test_packed_equivalence import random_circuit

NUM_SAMPLES = 40


@pytest.fixture(scope="module")
def results():
    circuit = random_circuit(7)
    rng = np.random.default_rng(0)
    ports = {
        name: rng.integers(0, 2, NUM_SAMPLES).astype(np.uint8)
        for name in circuit.input_names
    }
    return {
        backend: make_simulator(circuit, UnitDelay(), backend).run(ports)
        for backend in ("wave", "packed")
    }


@pytest.mark.parametrize("backend", ["wave", "packed"])
class TestShapeValidation:
    def test_short_rows_raise_with_backend_name(self, results, backend):
        result = results[backend]
        name = result.output_names[0]
        with pytest.raises(ValueError, match=f"'{backend}' backend"):
            result.sample_rows(name, np.zeros(NUM_SAMPLES - 1, np.int64))

    def test_long_rows_raise(self, results, backend):
        result = results[backend]
        name = result.output_names[0]
        with pytest.raises(ValueError, match="one capture step per sample"):
            result.sample_rows(name, np.zeros(NUM_SAMPLES + 5, np.int64))

    def test_2d_rows_raise(self, results, backend):
        result = results[backend]
        name = result.output_names[0]
        with pytest.raises(ValueError, match=f"'{backend}' backend"):
            result.sample_rows(name, np.zeros((2, NUM_SAMPLES), np.int64))

    def test_message_states_expected_shape(self, results, backend):
        result = results[backend]
        name = result.output_names[0]
        with pytest.raises(ValueError, match=rf"\({NUM_SAMPLES},\)"):
            result.sample_rows(name, np.zeros(3, np.int64))


class TestValidRowsUnchanged:
    def test_backends_agree_on_valid_rows(self, results):
        rng = np.random.default_rng(1)
        wave, packed = results["wave"], results["packed"]
        rows = rng.integers(0, wave.settle_step + 1, NUM_SAMPLES)
        for name in wave.output_names:
            assert np.array_equal(
                wave.sample_rows(name, rows), packed.sample_rows(name, rows)
            )

    def test_step_values_still_clamp(self, results):
        # out-of-range *steps* clamp (documented jitter semantics); only
        # the sample-count dimension is an error
        for result in results.values():
            name = result.output_names[0]
            high = np.full(NUM_SAMPLES, result.settle_step + 999, np.int64)
            last = np.full(NUM_SAMPLES, result.settle_step, np.int64)
            assert np.array_equal(
                result.sample_rows(name, high),
                result.sample_rows(name, last),
            )
            low = np.full(NUM_SAMPLES, -5, np.int64)
            zero = np.zeros(NUM_SAMPLES, np.int64)
            assert np.array_equal(
                result.sample_rows(name, low),
                result.sample_rows(name, zero),
            )
