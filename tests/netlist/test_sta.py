"""Unit tests for static timing analysis."""

from repro.netlist.delay import PerOpDelay, UnitDelay
from repro.netlist.gates import Circuit
from repro.netlist.sim import WaveformSimulator
from repro.netlist.sta import critical_path, static_timing


def _adder_like() -> Circuit:
    c = Circuit()
    a, b, cin = c.input("a"), c.input("b"), c.input("cin")
    s1, c1 = c.full_adder(a, b, cin)
    s2, c2 = c.full_adder(s1, a, c1)
    c.output("s", s2)
    c.output("c", c2)
    return c


class TestStaticTiming:
    def test_chain_depth(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        net = a
        for _ in range(6):
            net = c.xor(net, b)
        c.output("y", net)
        assert static_timing(c, UnitDelay()).critical_delay == 6

    def test_outputs_only(self):
        # deep logic that is not an output does not count
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        deep = a
        for _ in range(10):
            deep = c.xor(deep, b)
        c.output("y", c.and_(a, b))
        assert static_timing(c, UnitDelay()).critical_delay == 1

    def test_per_net_arrivals(self):
        c = _adder_like()
        timing = static_timing(c, UnitDelay())
        for net in c.input_nets:
            assert timing.of(net) == 0

    def test_per_op_delay(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        c.output("y", c.and_(a, b))
        assert static_timing(c, PerOpDelay({"AND": 7})).critical_delay == 7

    def test_matches_simulator_settle(self):
        c = _adder_like()
        sim = WaveformSimulator(c, UnitDelay())
        assert sim.settle_step == static_timing(c, UnitDelay()).critical_delay

    def test_empty_circuit(self):
        c = Circuit()
        assert static_timing(c).critical_delay == 0


class TestCriticalPath:
    def test_path_length_equals_delay(self):
        c = Circuit()
        a, b = c.input("a"), c.input("b")
        net = a
        for _ in range(4):
            net = c.xor(net, b)
        c.output("y", net)
        path = critical_path(c, UnitDelay())
        assert len(path) == 4

    def test_path_is_connected(self):
        c = _adder_like()
        path = critical_path(c, UnitDelay())
        for g1, g2 in zip(path, path[1:]):
            assert g1.output in g2.inputs

    def test_no_outputs(self):
        c = Circuit()
        c.input("a")
        assert critical_path(c) == []
