"""Tests for the propagation-chain statistics (Eqs. (5)-(8))."""

from fractions import Fraction

import pytest

from repro.core.model.chains import (
    CASE_PROBABILITIES,
    chain_delay_distribution,
    stage_chain_distribution,
)


class TestCaseProbabilities:
    def test_sum_to_one(self):
        assert sum(CASE_PROBABILITIES.values()) == 1

    def test_uniform_digit_values(self):
        assert CASE_PROBABILITIES["C1"] == Fraction(1, 9)
        assert CASE_PROBABILITIES["C2"] == Fraction(4, 9)
        assert CASE_PROBABILITIES["C3"] == CASE_PROBABILITIES["C4"]


class TestStageDistribution:
    @pytest.mark.parametrize("tau", range(-3, 8))
    def test_normalises(self, tau):
        dist = stage_chain_distribution(tau, 8)
        assert sum(dist.values()) == 1

    def test_first_stage_only_c2(self):
        dist = stage_chain_distribution(-3, 8)
        # either no chain or the single C2 chain of length delta + 1
        assert set(dist) <= {0, 4}
        assert dist[4] == Fraction(4, 9)

    def test_late_stage_no_chain(self):
        # last delta stages append nothing: no chains generated
        dist = stage_chain_distribution(7, 8)
        assert dist == {0: Fraction(1)}

    def test_c2_maximal_length(self):
        n, delta = 12, 3
        tau = 2
        dist = stage_chain_distribution(tau, n, delta)
        d_c2 = min(tau + 2 * delta + 1, n - 1 - tau)
        assert dist.get(d_c2, 0) >= CASE_PROBABILITIES["C2"]

    def test_cap_by_final_stage(self):
        # a stage close to the end cannot launch a long chain (Eq. (7))
        n = 8
        tau = 4
        dist = stage_chain_distribution(tau, n)
        assert max(dist) <= n - 1 - tau

    def test_c3_recursion_weights(self):
        """The C3/C4 geometric word-length weights are (2/3)(1/3)^k."""
        n, delta, tau = 16, 3, 2
        dist = stage_chain_distribution(tau, n, delta)
        # chain of length tau + 2*delta (C3/C4 with k = 0): weight
        # 2 * (2/9) * (2/3) plus nothing else at that length
        expected = 2 * CASE_PROBABILITIES["C3"] * Fraction(2, 3)
        assert dist[tau + 2 * delta] == expected

    def test_stage_out_of_range(self):
        with pytest.raises(ValueError):
            stage_chain_distribution(-4, 8)
        with pytest.raises(ValueError):
            stage_chain_distribution(8, 8)


class TestChainDelayDistribution:
    def test_longest_chain_matches_paper_formula(self):
        """max d = min over the caps: (N + 2*delta) / 2 for even N —
        the annihilation result behind the paper's Eq. (8) discussion."""
        for n in (8, 12, 16):
            dist = chain_delay_distribution(n)
            assert max(dist) == (n + 2 * 3) // 2

    def test_intensity_positive(self):
        dist = chain_delay_distribution(8)
        assert all(p > 0 for p in dist.values())
        assert 0 not in dist

    def test_longer_word_more_chains(self):
        d8 = chain_delay_distribution(8)
        d16 = chain_delay_distribution(16)
        assert sum(d16.values()) > sum(d8.values())
