"""Tests for the digit-sparsity (p_zero) extension of the chain model."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.model import OverclockingErrorModel
from repro.core.model.chains import (
    CASE_PROBABILITIES,
    case_probabilities,
    chain_delay_distribution,
    stage_chain_distribution,
)


class TestCaseProbabilities:
    def test_uniform_recovers_constants(self):
        cases = case_probabilities(Fraction(1, 3))
        assert cases == CASE_PROBABILITIES

    def test_normalised_for_any_p(self):
        for p in (Fraction(1, 10), Fraction(1, 2), Fraction(9, 10)):
            assert sum(case_probabilities(p).values()) == 1

    def test_bounds(self):
        with pytest.raises(ValueError):
            case_probabilities(Fraction(0))
        with pytest.raises(ValueError):
            case_probabilities(Fraction(1))


class TestSparsityEffect:
    def test_sparser_digits_fewer_chains(self):
        """The paper's real-image argument: more zero digits -> fewer and
        shorter chains -> smaller violation probability."""
        dense = OverclockingErrorModel(8, p_zero=Fraction(1, 4))
        uniform = OverclockingErrorModel(8)
        sparse = OverclockingErrorModel(8, p_zero=Fraction(2, 3))
        for b in (4, 5, 6):
            assert (
                sparse.violation_probability(b)
                <= uniform.violation_probability(b)
                <= dense.violation_probability(b)
            )

    def test_sparser_digits_smaller_error(self):
        uniform = OverclockingErrorModel(8)
        sparse = OverclockingErrorModel(8, p_zero=Fraction(2, 3))
        for b in (4, 5, 6):
            assert sparse.expected_error(b) <= uniform.expected_error(b)

    def test_stage_distributions_normalise(self):
        for p in (Fraction(1, 5), Fraction(3, 5)):
            for tau in range(-3, 8):
                dist = stage_chain_distribution(tau, 8, p_zero=p)
                assert sum(dist.values()) == 1

    def test_chain_intensity_shrinks(self):
        uniform = chain_delay_distribution(8)
        sparse = chain_delay_distribution(8, p_zero=Fraction(2, 3))
        assert sum(sparse.values()) < sum(uniform.values())

    def test_calibrated_preserves_p_zero(self):
        model = OverclockingErrorModel(8, p_zero=Fraction(1, 2))
        fitted = model.calibrated([5], [model.expected_error(5) * 3])
        assert fitted.p_zero == Fraction(1, 2)

    def test_matches_monte_carlo_with_sparse_digits(self):
        """Drive the wave model with sparse digits and check the sparse
        model tracks it better than the uniform model at mild depths."""
        from repro.core.conversion import digits_to_scaled_int
        from repro.core.online_multiplier import OnlineMultiplier

        n, samples = 8, 8000
        rng = np.random.default_rng(3)
        p0 = 0.6
        probs = [p0, (1 - p0) / 2, (1 - p0) / 2]
        xd = rng.choice([0, 1, -1], size=(n, samples), p=probs).astype(np.int8)
        yd = rng.choice([0, 1, -1], size=(n, samples), p=probs).astype(np.int8)
        om = OnlineMultiplier(n)
        waves = om.wave(xd, yd)
        final = digits_to_scaled_int(waves[-1])
        b = 5
        mc_err = float(
            np.abs(digits_to_scaled_int(waves[b]) - final).mean()
        ) / 2**n

        sparse = OverclockingErrorModel(n, p_zero=Fraction(3, 5))
        uniform = OverclockingErrorModel(n)
        err_sparse = abs(np.log(sparse.expected_error(b) / mc_err))
        err_uniform = abs(np.log(uniform.expected_error(b) / mc_err))
        assert err_sparse < err_uniform
