"""Tests for Algorithm 2 and the expected overclocking error."""

import pytest

from repro.core.model import OverclockingErrorModel


class TestViolationProbability:
    def test_monotone_decreasing_in_b(self):
        model = OverclockingErrorModel(12)
        probs = [model.violation_probability(b) for b in range(4, 16)]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_zero_beyond_longest_chain(self):
        model = OverclockingErrorModel(8)
        assert model.violation_probability((8 + 6) // 2) == 0.0

    def test_requires_b_above_delta(self):
        model = OverclockingErrorModel(8)
        with pytest.raises(ValueError):
            model.violation_probability(2)

    def test_independent_variant_bounded(self):
        model = OverclockingErrorModel(12)
        for b in range(4, 12):
            p_union = model.violation_probability(b)
            p_indep = model.violation_probability(b, independent=True)
            assert 0.0 <= p_indep <= min(p_union, 1.0) + 1e-12

    def test_larger_n_more_violations(self):
        b = 6
        p8 = OverclockingErrorModel(8).violation_probability(b)
        p16 = OverclockingErrorModel(16).violation_probability(b)
        assert p16 >= p8


class TestExpectedError:
    def test_decreases_exponentially_with_b(self):
        model = OverclockingErrorModel(12)
        errors = [model.expected_error(b) for b in range(4, 10)]
        assert all(a > b for a, b in zip(errors, errors[1:]))
        # roughly geometric decay: each extra stage halves-or-better
        for a, b in zip(errors, errors[1:]):
            if b > 0:
                assert a / b >= 1.8

    def test_zero_when_no_violation(self):
        model = OverclockingErrorModel(8)
        assert model.expected_error(7) == 0.0

    def test_kappa_scales_linearly(self):
        m1 = OverclockingErrorModel(8, kappa=1.0)
        m2 = OverclockingErrorModel(8, kappa=2.0)
        assert m2.expected_error(5) == pytest.approx(2 * m1.expected_error(5))

    def test_expectation_curve(self):
        model = OverclockingErrorModel(8)
        curve = model.expectation_curve([0.5, 0.7, 1.0, 1.2])
        assert curve[-1][1] == 0.0  # at/above rated: no error
        assert curve[0][1] >= curve[1][1]

    def test_b_of_period(self):
        model = OverclockingErrorModel(8)
        assert model.b_of_period(1.0) == model.num_stages
        assert model.b_of_period(0.5) == (model.num_stages + 1) // 2

    def test_b_of_period_exact_multiples(self):
        # Regression: periods that are exact multiples of mu must land on
        # their own depth.  ceil(0.28 * 25) == 8 in binary float, so a
        # 22-digit multiplier (25 stages) clocked at 7/25 of the
        # structural delay historically reported depth 8.
        model = OverclockingErrorModel(22)  # num_stages == 25
        assert model.b_of_period(0.28) == 7
        for b in range(1, model.num_stages + 1):
            assert model.b_of_period(b / model.num_stages) == b


class TestPerDelayCurves:
    def test_rows_sorted_and_consistent(self):
        model = OverclockingErrorModel(12)
        rows = model.per_delay_curves()
        delays = [r[0] for r in rows]
        assert delays == sorted(delays)
        for _d, p, eps, e in rows:
            assert p > 0
            assert eps >= 0
            assert e == pytest.approx(p * eps)

    def test_magnitude_decreases_with_delay(self):
        """Fig. 5: error magnitude decays exponentially in chain delay.

        Only delays ``d > delta`` matter: a violation requires ``d > b``
        and the model demands ``b > delta``.
        """
        model = OverclockingErrorModel(16)
        rows = model.per_delay_curves()
        eps = [r[2] for r in rows if r[0] > model.delta and r[2] > 0]
        assert all(a > b for a, b in zip(eps, eps[1:]))

    def test_eq11_matches_sum(self):
        model = OverclockingErrorModel(8)
        b = 5
        total = sum(e for d, _p, _eps, e in model.per_delay_curves() if d > b)
        assert model.eq11_expected_error(b) == pytest.approx(total)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            OverclockingErrorModel(0)


class TestWorstCaseDelay:
    def test_matches_closed_form(self):
        """(N + 2*delta) // 2 — the paper's refined worst-case result."""
        for n in (4, 8, 12, 16, 32):
            model = OverclockingErrorModel(n)
            assert model.worst_case_delay() == (n + 2 * 3) // 2

    def test_below_structural(self):
        model = OverclockingErrorModel(8)
        assert model.worst_case_delay() < model.structural_delay

    def test_matches_chain_distribution_support(self):
        from repro.core.model.chains import chain_delay_distribution

        for n in (8, 16):
            model = OverclockingErrorModel(n)
            assert model.worst_case_delay() == max(chain_delay_distribution(n))

    def test_headroom_grows_with_n(self):
        h8 = OverclockingErrorModel(8).annihilation_headroom()
        h32 = OverclockingErrorModel(32).annihilation_headroom()
        assert 0 < h8 < h32 < 0.5

    def test_no_violation_at_worst_case_depth(self):
        model = OverclockingErrorModel(12)
        assert model.violation_probability(model.worst_case_delay()) == 0.0
