"""Golden-value pinning of the N=8 Monte-Carlo error curve.

``mc_expected_error`` is fully deterministic given its seed, and the two
simulation backends are bit-identical, so the mean-absolute-error at any
sampling depth is a *constant* of the repository.  Pinning three depths
to stored values turns any silent numerical drift — a kernel change, an
ops-provider change, a packing bug — into a loud test failure.

The constants were produced by the seed-2014, 20000-sample run the CLI
``model`` command uses by default (Fig. 4 top, N=8, delta=3).
"""

import numpy as np
import pytest

from repro.sim.montecarlo import mc_expected_error

#: depth b -> (E|eps|, P(violation)) for N=8, delta=3, seed=2014, S=20000
GOLDEN = {
    4: (0.154214453125, 0.98525),
    5: (0.039919921875, 0.9476),
    6: (0.0098267578125, 0.8216),
}

TOL = 1e-12


@pytest.fixture(scope="module", params=["packed", "wave"])
def mc(request):
    return mc_expected_error(
        8, num_samples=20000, seed=2014, backend=request.param
    )


@pytest.mark.parametrize("depth", sorted(GOLDEN))
def test_mean_abs_error_pinned(mc, depth):
    want_err, want_viol = GOLDEN[depth]
    got_err, got_viol = mc.at_depth(depth)
    assert got_err == pytest.approx(want_err, abs=TOL)
    assert got_viol == pytest.approx(want_viol, abs=TOL)


def test_settled_depths_are_error_free(mc):
    """From depth N (=8) on, every sample has settled: exact zero error."""
    for depth in range(8, int(mc.depths[-1]) + 1):
        err, viol = mc.at_depth(depth)
        assert err == 0.0
        assert viol == 0.0


def test_curve_is_monotone_decreasing(mc):
    assert np.all(np.diff(mc.mean_abs_error) <= 0)
    assert np.all(np.diff(mc.violation_probability) <= 0)
