"""Integration: gate-level and stage-level timing views are consistent.

The stage-delay wave model (Fig. 4 top) and the gate-level waveform
simulation (Fig. 4 bottom) describe the same unrolled multiplier at two
levels of timing fidelity.  Under unit gate delays the two must agree on
*which digits* an overclocked register corrupts first and on the final
settled values.
"""

import numpy as np
import pytest

from repro.core.conversion import digits_to_scaled_int, port_values_from_digits
from repro.core.online_multiplier import OnlineMultiplier
from repro.netlist.delay import UnitDelay
from repro.netlist.sim import WaveformSimulator
from repro.sim.montecarlo import uniform_digit_batch


@pytest.fixture(scope="module")
def setup():
    n = 8
    om = OnlineMultiplier(n)
    rng = np.random.default_rng(21)
    xd = uniform_digit_batch(n, 1500, rng)
    yd = uniform_digit_batch(n, 1500, rng)
    circuit = om.build_circuit()
    sim = WaveformSimulator(circuit, UnitDelay())
    ports, _ = port_values_from_digits("x", xd)
    ports_y, _ = port_values_from_digits("y", yd)
    ports.update(ports_y)
    gate_res = sim.run(ports)
    waves = om.wave(xd, yd)
    return n, om, gate_res, waves


def _gate_digits(gate_res, n, step):
    s = gate_res.sample(step)
    return np.stack(
        [
            s[f"zp{k}"].astype(np.int8) - s[f"zn{k}"].astype(np.int8)
            for k in range(n)
        ]
    )


class TestConsistency:
    def test_settled_values_equal(self, setup):
        n, _om, gate_res, waves = setup
        assert np.array_equal(
            _gate_digits(gate_res, n, gate_res.settle_step), waves[-1]
        )

    def test_both_corrupt_lsd_first(self, setup):
        """Sampling early, the first still-correct digit prefix shrinks
        from the MSD side in both views."""
        n, om, gate_res, waves = setup
        final = waves[-1]
        fvals = digits_to_scaled_int(final)

        # wave view: mid-depth sample
        b = om.delta + 3
        wave_err = digits_to_scaled_int(waves[b]) - fvals
        # gate view: comparable fraction of the settle time
        step = int(gate_res.settle_step * b / om.num_stages)
        gate_err = digits_to_scaled_int(_gate_digits(gate_res, n, step)) - fvals

        for err in (wave_err, gate_err):
            bad = np.abs(err) > 0
            assert bad.any()
            # error magnitudes stay far below full scale (LSD corruption)
            assert np.abs(err).max() < 2 ** (n - 1)

    def test_gate_level_error_free_below_structural(self, setup):
        """Chain annihilation: the measured error-free period sits strictly
        below the structural critical path, by at least ~15 %."""
        n, _om, gate_res, _waves = setup
        final = _gate_digits(gate_res, n, gate_res.settle_step)
        fvals = digits_to_scaled_int(final)
        error_free = 0
        for t in range(gate_res.settle_step, -1, -1):
            vals = digits_to_scaled_int(_gate_digits(gate_res, n, t))
            if not np.array_equal(vals, fvals):
                error_free = t + 1
                break
        assert error_free <= 0.85 * gate_res.settle_step
