"""Integration: the image-filter case study reproduces the paper's claims.

Small image + unit delays keep this fast while still exercising the full
two-design comparison pipeline end to end (Section 4 of the paper).
"""

import numpy as np
import pytest

from repro.imaging.filters import GaussianFilterDatapath
from repro.imaging.metrics import mre_percent, snr_db
from repro.imaging.synthetic import benchmark_image
from repro.netlist.area import estimate_area
from repro.netlist.delay import FpgaDelay


@pytest.fixture(scope="module")
def case_study():
    img = benchmark_image("lena", size=24)
    out = {}
    for arith in ("traditional", "online"):
        dp = GaussianFilterDatapath(arith, delay_model=FpgaDelay())
        out[arith] = (dp, dp.apply(img))
    return out


class TestCaseStudy:
    def test_online_snr_wins_at_mild_overclock(self, case_study):
        """Paper Fig. 7 / Table 2: online arithmetic keeps a much higher
        SNR at the same normalized overclocking factor."""
        gaps = []
        for factor in (1.05, 1.10):
            snrs = {}
            for arith, (_dp, run) in case_study.items():
                out = run.at_factor(factor)
                snrs[arith] = snr_db(run.correct, out)
            gaps.append(snrs["online"] - snrs["traditional"])
        assert max(gaps) > 5.0  # paper reports 20 dB-class gaps

    def test_online_mre_reduction_at_first_violation(self, case_study):
        """Paper Table 1: large relative MRE reduction with online
        arithmetic at mild overclocking."""
        mres = {}
        for arith, (_dp, run) in case_study.items():
            out = run.at_factor(1.05)
            mres[arith] = mre_percent(run.correct, out)
        assert mres["online"] < mres["traditional"]

    def test_traditional_errors_are_salt_and_pepper(self, case_study):
        """MSB corruption: the traditional design's worst single-pixel
        error approaches full scale, the online design's stays small."""
        worst = {}
        for arith, (_dp, run) in case_study.items():
            out = run.at_factor(1.15)
            worst[arith] = float(np.abs(out - run.correct).max())
        assert worst["traditional"] > 64.0  # > quarter full-scale spike
        assert worst["online"] < worst["traditional"]

    def test_area_overhead_online(self, case_study):
        """Paper Table 4: online arithmetic costs about 2x the LUTs."""
        areas = {
            arith: estimate_area(dp.circuit)
            for arith, (dp, _run) in case_study.items()
        }
        overhead = areas["online"].overhead_vs(areas["traditional"])
        assert 1.3 <= overhead <= 4.0

    def test_rated_frequencies_comparable(self, case_study):
        """The two designs' rated periods stay within a factor ~1.6 (the
        paper reports a 12 % gap on silicon; our delay model charges every
        adder level a full LUT hop, so the online design pays more)."""
        rated = {
            arith: run.rated_step for arith, (_dp, run) in case_study.items()
        }
        ratio = rated["online"] / rated["traditional"]
        assert 0.6 <= ratio <= 1.6

    def test_error_free_headroom_exists(self, case_study):
        for _arith, (_dp, run) in case_study.items():
            assert run.error_free_step < run.rated_step
