"""Integration: the analytical model tracks the Monte-Carlo simulation.

This is the verification the paper performs in Fig. 4 (top row): the
Section-3 model, evaluated under its own timing assumptions, should agree
with a stage-delay Monte-Carlo of the actual multiplier recurrence on
uniform-independent inputs — same order of magnitude and the same
exponential decay with sampling depth.
"""

import numpy as np
import pytest

from repro.core.model import OverclockingErrorModel
from repro.sim.montecarlo import mc_expected_error


@pytest.fixture(scope="module", params=[8, 12])
def pair(request):
    n = request.param
    mc = mc_expected_error(n, num_samples=6000, seed=11)
    model = OverclockingErrorModel(n)
    return n, mc, model


class TestModelAgreement:
    def test_same_order_of_magnitude_in_main_regime(self, pair):
        n, mc, model = pair
        checked = 0
        for i, b in enumerate(mc.depths):
            b = int(b)
            e_mc = mc.mean_abs_error[i]
            e_model = model.expected_error(b)
            if e_mc > 1e-4 and e_model > 0:
                ratio = e_model / e_mc
                assert 0.2 <= ratio <= 5.0, (n, b, e_mc, e_model)
                checked += 1
        assert checked >= 2

    def test_same_decay_rate(self, pair):
        """Both decay roughly geometrically (factor ~2-8 per stage)."""
        _n, mc, model = pair
        depths = [int(b) for b in mc.depths]
        for seq_source in ("mc", "model"):
            vals = []
            for i, b in enumerate(depths):
                v = (
                    mc.mean_abs_error[i]
                    if seq_source == "mc"
                    else model.expected_error(b)
                )
                if v > 1e-6:
                    vals.append(v)
            ratios = [a / b for a, b in zip(vals, vals[1:])]
            assert all(r > 1.5 for r in ratios), (seq_source, vals)

    def test_violation_probability_tracks(self, pair):
        """Where the model predicts certain violation, the MC sees a high
        violation rate, and where it predicts none, the MC rate is small
        (the model's known tail optimism, acknowledged by the paper)."""
        _n, mc, model = pair
        for i, b in enumerate(mc.depths):
            b = int(b)
            if b >= model.num_stages:
                continue
            p_model = model.violation_probability(b)
            p_mc = mc.violation_probability[i]
            if p_model >= 1.0:
                assert p_mc > 0.8
            if p_mc == 0.0:
                assert p_model == 0.0

    def test_model_zero_tail_is_at_most_one_stage_early(self, pair):
        """The model's predicted last violating depth may undershoot the
        MC by at most one stage (the small-error tail the paper notes its
        model does not capture)."""
        _n, mc, model = pair
        mc_last = max(
            (int(b) for b, e in zip(mc.depths, mc.mean_abs_error) if e > 0),
            default=0,
        )
        model_last = max(
            (b for b in range(4, model.num_stages) if model.expected_error(b) > 0),
            default=0,
        )
        assert mc_last - model_last <= 1
