"""FaultConfig: validation, null detection, family instantiation."""

import pytest

from repro.faults import (
    FAULT_MODELS,
    FaultConfig,
    config_for_model,
    fault_signature,
)


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clock_jitter": -1},
            {"meta_window": -1},
            {"drift_max": -1},
            {"drift_rate": -0.1},
            {"drift_rate": 1.5, "drift_max": 1},
            {"seu_rate": 2.0},
            {"stuck_rate": -0.5},
            {"meta_rate": 1.01},
            {"drift_rate": 0.5},  # needs drift_max >= 1
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            FaultConfig(**kwargs)

    def test_messages_name_the_value(self):
        with pytest.raises(ValueError, match="-1"):
            FaultConfig(clock_jitter=-1)
        with pytest.raises(ValueError, match="seu_rate"):
            FaultConfig(seu_rate=1.5)


class TestNull:
    def test_default_is_null(self):
        assert FaultConfig().is_null()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"clock_jitter": 1},
            {"drift_rate": 0.1, "drift_max": 2},
            {"seu_rate": 0.01},
            {"stuck_rate": 0.01},
            {"meta_window": 2},
        ],
    )
    def test_any_active_knob_is_not_null(self, kwargs):
        assert not FaultConfig(**kwargs).is_null()

    def test_with_replaces_and_validates(self):
        cfg = FaultConfig().with_(seu_rate=0.25)
        assert cfg.seu_rate == 0.25
        with pytest.raises(ValueError):
            FaultConfig().with_(seu_rate=-1.0)


class TestSignature:
    def test_distinct_configs_distinct_signatures(self):
        a = fault_signature(FaultConfig())
        b = fault_signature(FaultConfig(seu_rate=0.1))
        c = fault_signature(FaultConfig(seed=1))
        assert len({a, b, c}) == 3

    def test_signature_is_stable(self):
        assert fault_signature(FaultConfig()) == fault_signature(FaultConfig())


class TestConfigForModel:
    @pytest.mark.parametrize("model", FAULT_MODELS)
    def test_zero_rate_is_null(self, model):
        assert config_for_model(model, 0.0, rated_step=20).is_null()

    @pytest.mark.parametrize("model", FAULT_MODELS)
    def test_positive_rate_is_active(self, model):
        assert not config_for_model(model, 0.2, rated_step=20).is_null()

    def test_timing_families_scale_with_rated_step(self):
        small = config_for_model("jitter", 0.1, rated_step=10)
        large = config_for_model("jitter", 0.1, rated_step=100)
        assert large.clock_jitter > small.clock_jitter
        assert config_for_model("metastable", 0.1, 100).meta_window == 10

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="hologram"):
            config_for_model("hologram", 0.1, rated_step=10)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            config_for_model("seu", 1.5, rated_step=10)


class TestExactCeilScaling:
    """Regression: ``ceil(rate * rated_step)`` taken exactly.

    ``0.28 * 25`` is ``7.000000000000001`` in binary float, so the
    jitter and metastability windows historically came out one quantum
    too wide whenever the product was an exact integer.
    """

    def test_jitter_window_exact_multiple(self):
        assert config_for_model("jitter", 0.28, rated_step=25).clock_jitter == 7

    def test_meta_window_exact_multiple(self):
        assert config_for_model("metastable", 0.28, rated_step=25).meta_window == 7

    def test_windows_round_trip_every_rate(self):
        for step in (10, 25, 29, 40):
            for k in range(1, step + 1):
                cfg = config_for_model("jitter", k / step, rated_step=step)
                assert cfg.clock_jitter == k
