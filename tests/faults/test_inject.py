"""FaultInjector: null-fault identity and backend-identical injection.

The load-bearing property (a seeded-loop variant of a property-based
test): for *any* random feed-forward circuit, a null fault config makes
the faulted capture bit-identical to the plain ``sample`` on both
simulation engines — and any *non-null* config still produces
bit-identical faulted captures across engines, because injection
operates on the backend-neutral ``sample_rows`` primitive with a fixed
draw layout.
"""

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector
from repro.netlist.compiled import make_simulator
from repro.netlist.delay import UnitDelay
from tests.netlist.test_packed_equivalence import random_circuit


def _run_both(circuit, num_samples=75, seed=11):
    rng = np.random.default_rng(seed)
    ports = {
        name: rng.integers(0, 2, num_samples).astype(np.uint8)
        for name in circuit.input_names
    }
    packed = make_simulator(circuit, UnitDelay(), "packed").run(ports)
    wave = make_simulator(circuit, UnitDelay(), "wave").run(ports)
    return packed, wave


class TestNullFaultIdentity:
    @pytest.mark.parametrize("seed", range(12))
    def test_null_capture_equals_sample_on_any_circuit(self, seed):
        circuit = random_circuit(seed)
        packed, wave = _run_both(circuit)
        injector = FaultInjector(FaultConfig(), entropy=seed)
        for result in (packed, wave):
            for step in {0, result.settle_step // 2, result.settle_step}:
                values, injected = injector.capture(result, step)
                assert all(v == 0 for v in injected.values())
                golden = result.sample(step)
                for name in result.output_names:
                    assert np.array_equal(values[name], golden[name])


class TestBackendIdenticalInjection:
    @pytest.mark.parametrize(
        "config",
        [
            FaultConfig(clock_jitter=2),
            FaultConfig(seu_rate=0.2),
            FaultConfig(meta_window=2),
            FaultConfig(clock_jitter=1, seu_rate=0.1, meta_window=1),
        ],
        ids=["jitter", "seu", "meta", "combined"],
    )
    @pytest.mark.parametrize("seed", range(4))
    def test_wave_and_packed_capture_identically(self, config, seed):
        circuit = random_circuit(100 + seed)
        packed, wave = _run_both(circuit)
        step = max(1, packed.settle_step // 2)
        vp, ip = FaultInjector(config, entropy=seed).capture(packed, step)
        vw, iw = FaultInjector(config, entropy=seed).capture(wave, step)
        assert ip == iw
        for name in packed.output_names:
            assert np.array_equal(vp[name], vw[name])

    def test_capture_is_reproducible(self):
        circuit = random_circuit(3)
        packed, _ = _run_both(circuit)
        config = FaultConfig(clock_jitter=1, seu_rate=0.3)
        injector = FaultInjector(config, entropy=42)
        a, ia = injector.capture(packed, 2)
        b, ib = injector.capture(packed, 2)
        assert ia == ib
        for name in packed.output_names:
            assert np.array_equal(a[name], b[name])

    def test_entropy_changes_the_draws(self):
        circuit = random_circuit(4)
        packed, _ = _run_both(circuit, num_samples=200)
        config = FaultConfig(seu_rate=0.3)
        a, _ = FaultInjector(config, entropy=1).capture(packed, 2)
        b, _ = FaultInjector(config, entropy=2).capture(packed, 2)
        assert any(
            not np.array_equal(a[name], b[name])
            for name in packed.output_names
        )


class TestFaultEffects:
    def test_seu_flips_the_counted_bits(self):
        circuit = random_circuit(5)
        packed, _ = _run_both(circuit, num_samples=300)
        step = packed.settle_step
        values, injected = FaultInjector(
            FaultConfig(seu_rate=0.25), entropy=9
        ).capture(packed, step)
        golden = packed.sample(step)
        flipped = sum(
            int(np.count_nonzero(values[name] != golden[name]))
            for name in packed.output_names
        )
        assert flipped == injected["seu"] > 0

    def test_jitter_counts_nonzero_offsets(self):
        circuit = random_circuit(6)
        packed, _ = _run_both(circuit, num_samples=300)
        _, injected = FaultInjector(
            FaultConfig(clock_jitter=2), entropy=9
        ).capture(packed, max(1, packed.settle_step // 2))
        assert injected["jitter"] > 0

    def test_metastability_needs_an_unsettled_waveform(self):
        circuit = random_circuit(7)
        packed, _ = _run_both(circuit, num_samples=300)
        # at the settle step (+ guard past the end) nothing is changing,
        # so metastability cannot trigger there with window past settle
        values, injected = FaultInjector(
            FaultConfig(meta_window=1), entropy=9
        ).capture(packed, packed.settle_step)
        golden = packed.sample(packed.settle_step)
        if injected["meta"] == 0:
            for name in packed.output_names:
                assert np.array_equal(values[name], golden[name])
