"""SIGKILL a live campaign mid-flight; the resumed run is bit-identical.

This is the checkpoint/resume guarantee tested the hard way: a child
process runs a fault campaign against a persistent cache and is killed
with SIGKILL (no cleanup, no atexit) once a few shard checkpoints hit
the disk.  The resumed in-process run must complete only the missing
shards and produce curves bit-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
from repro.faults import run_fault_campaign
from repro.runners import RunConfig

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

CAMPAIGN = dict(model="jitter", rates=(0.0, 0.15), num_samples=600)
CONFIG = dict(ndigits=6, shard_size=50)

CHILD_SCRIPT = """
import sys
from repro.faults import run_fault_campaign
from repro.runners import RunConfig

config = RunConfig(ndigits=6, shard_size=50, cache_dir=sys.argv[1])
run_fault_campaign(
    config, model="jitter", rates=(0.0, 0.15), num_samples=600
)
"""


def _checkpoints(cache_dir: Path):
    found = []
    for path in cache_dir.glob("*.json"):
        try:
            if json.loads(path.read_text()).get("kind") == "_raw":
                found.append(path)
        except (OSError, ValueError):
            continue  # mid-write; not a completed checkpoint
    return found


def test_sigkill_mid_campaign_resumes_bit_identically(tmp_path):
    cache_dir = tmp_path / "cache"
    cache_dir.mkdir()
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD_SCRIPT, str(cache_dir)],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if len(_checkpoints(cache_dir)) >= 3 or child.poll() is not None:
                break
            time.sleep(0.02)
        alive = child.poll() is None
        if alive:
            child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()

    done_before_kill = len(_checkpoints(cache_dir))
    assert done_before_kill >= 1, "child produced no checkpoints to resume"

    # the golden, uninterrupted run (separate cache so nothing is shared)
    golden = run_fault_campaign(
        RunConfig(cache_dir=str(tmp_path / "golden"), **CONFIG), **CAMPAIGN
    )

    resumed = run_fault_campaign(
        RunConfig(cache_dir=str(cache_dir), **CONFIG), **CAMPAIGN
    )
    if alive:  # genuinely killed mid-flight: some shards must resume
        assert resumed.fault_stats.shards_resumed >= 1
        assert resumed.run_stats.cache == "miss"

    assert np.array_equal(golden.rates, resumed.rates)
    assert np.array_equal(golden.online_error, resumed.online_error)
    assert np.array_equal(
        golden.traditional_error, resumed.traditional_error
    )
