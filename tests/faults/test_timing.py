"""DriftedDelayModel: null identity, determinism, cache signatures."""

import pytest

from repro.core.online_multiplier import build_online_multiplier
from repro.faults import DriftedDelayModel
from repro.netlist.delay import FpgaDelay, UnitDelay, delay_signature


@pytest.fixture(scope="module")
def circuit():
    return build_online_multiplier(4)


class TestNullIdentity:
    def test_zero_rate_assigns_base_delays(self, circuit):
        base = UnitDelay()
        drifted = DriftedDelayModel(base, drift_rate=0.0, drift_max=0)
        assert list(drifted.assign(circuit)) == list(base.assign(circuit))
        assert drifted.drifted_gates(circuit) == 0


class TestDrift:
    def test_deterministic_across_instances(self, circuit):
        a = DriftedDelayModel(UnitDelay(), 0.3, 2, seed=7)
        b = DriftedDelayModel(UnitDelay(), 0.3, 2, seed=7)
        assert list(a.assign(circuit)) == list(b.assign(circuit))

    def test_seed_changes_the_drift(self, circuit):
        a = DriftedDelayModel(UnitDelay(), 0.3, 2, seed=7)
        b = DriftedDelayModel(UnitDelay(), 0.3, 2, seed=8)
        assert list(a.assign(circuit)) != list(b.assign(circuit))

    def test_drift_only_lengthens(self, circuit):
        base = UnitDelay()
        drifted = DriftedDelayModel(base, 0.5, 3, seed=1)
        for b, d in zip(base.assign(circuit), drifted.assign(circuit)):
            assert b <= d <= b + 3
            if b == 0:  # free gates never drift
                assert d == 0

    def test_drifted_gates_counts(self, circuit):
        drifted = DriftedDelayModel(UnitDelay(), 0.5, 3, seed=1)
        n = drifted.drifted_gates(circuit)
        assert 0 < n < circuit.num_gates

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            DriftedDelayModel(UnitDelay(), -0.1, 2)
        with pytest.raises(ValueError):
            DriftedDelayModel(UnitDelay(), 0.1, -1)


class TestSignature:
    def test_signature_renders_nested_base_model(self):
        sig = delay_signature(DriftedDelayModel(FpgaDelay(), 0.2, 2, seed=5))
        assert "DriftedDelayModel" in sig
        assert "FpgaDelay" in sig  # recursion into the base model

    def test_signature_distinguishes_fault_parameters(self):
        a = delay_signature(DriftedDelayModel(UnitDelay(), 0.2, 2, seed=5))
        b = delay_signature(DriftedDelayModel(UnitDelay(), 0.3, 2, seed=5))
        c = delay_signature(DriftedDelayModel(UnitDelay(), 0.2, 2, seed=6))
        assert len({a, b, c}) == 3
