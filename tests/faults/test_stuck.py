"""Stuck-at circuit transform: identity, determinism, backend agreement."""

import numpy as np
import pytest

from repro.core.online_multiplier import build_online_multiplier
from repro.faults import apply_stuck_faults
from repro.netlist.compiled import make_simulator
from repro.netlist.delay import UnitDelay


@pytest.fixture(scope="module")
def circuit():
    return build_online_multiplier(4)


class TestNullIdentity:
    def test_zero_rate_returns_same_object(self, circuit):
        faulted, n = apply_stuck_faults(circuit, 0.0)
        assert faulted is circuit
        assert n == 0

    def test_rate_validated(self, circuit):
        with pytest.raises(ValueError):
            apply_stuck_faults(circuit, 1.5)


class TestTransform:
    def test_deterministic(self, circuit):
        a, na = apply_stuck_faults(circuit, 0.1, seed=3)
        b, nb = apply_stuck_faults(circuit, 0.1, seed=3)
        assert na == nb > 0
        sim = make_simulator(a, UnitDelay(), "packed")
        rng = np.random.default_rng(0)
        ports = {
            name: rng.integers(0, 2, 64).astype(np.uint8)
            for name in circuit.input_names
        }
        ra = sim.run(ports)
        rb = make_simulator(b, UnitDelay(), "packed").run(ports)
        for name in list(circuit.output_map):
            assert np.array_equal(
                ra.sample(ra.settle_step)[name],
                rb.sample(rb.settle_step)[name],
            )

    def test_interface_preserved(self, circuit):
        faulted, n = apply_stuck_faults(circuit, 0.2, seed=1)
        assert n > 0
        assert faulted.input_names == circuit.input_names
        assert list(faulted.output_map) == list(circuit.output_map)

    def test_function_actually_changes(self, circuit):
        faulted, n = apply_stuck_faults(circuit, 0.2, seed=1)
        assert n > 0
        rng = np.random.default_rng(1)
        ports = {
            name: rng.integers(0, 2, 128).astype(np.uint8)
            for name in circuit.input_names
        }
        clean = make_simulator(circuit, UnitDelay(), "packed").run(ports)
        rotten = make_simulator(faulted, UnitDelay(), "packed").run(ports)
        differs = any(
            not np.array_equal(
                clean.sample(clean.settle_step)[name],
                rotten.sample(rotten.settle_step)[name],
            )
            for name in list(circuit.output_map)
        )
        assert differs

    def test_backends_agree_on_faulted_netlist(self, circuit):
        faulted, _ = apply_stuck_faults(circuit, 0.15, seed=2)
        rng = np.random.default_rng(2)
        ports = {
            name: rng.integers(0, 2, 100).astype(np.uint8)
            for name in circuit.input_names
        }
        packed = make_simulator(faulted, UnitDelay(), "packed").run(ports)
        wave = make_simulator(faulted, UnitDelay(), "wave").run(ports)
        assert packed.settle_step == wave.settle_step
        for t in range(packed.settle_step + 1):
            for name in list(circuit.output_map):
                assert np.array_equal(
                    packed.sample(t)[name], wave.sample(t)[name]
                )
