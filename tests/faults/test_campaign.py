"""Fault campaigns: layout invariance, caching, checkpoint resume."""

import json

import numpy as np
import pytest

from repro.faults import DEFAULT_RATES, FaultCampaignResult, run_fault_campaign
from repro.runners import RunConfig

ARGS = dict(model="jitter", rates=(0.0, 0.15), num_samples=80)


def small_config(**kwargs):
    return RunConfig(ndigits=4, shard_size=40, **kwargs)


class TestCurves:
    def test_zero_rate_is_error_free_at_rated_clock(self):
        result = run_fault_campaign(small_config(), **ARGS)
        assert result.online_error[0] == 0.0
        assert result.traditional_error[0] == 0.0

    def test_positive_rate_injects(self):
        result = run_fault_campaign(small_config(), **ARGS)
        assert result.fault_stats.injected["jitter"] > 0

    def test_error_curve_lookup(self):
        result = run_fault_campaign(small_config(), **ARGS)
        assert np.array_equal(result.error_curve("online"), result.online_error)
        with pytest.raises(ValueError):
            result.error_curve("hologram")

    def test_rejects_empty_rates(self):
        with pytest.raises(ValueError):
            run_fault_campaign(small_config(), model="seu", rates=())

    def test_default_rates_start_at_zero(self):
        assert DEFAULT_RATES[0] == 0.0


class TestLayoutInvariance:
    def test_jobs_do_not_change_results(self):
        r1 = run_fault_campaign(small_config(jobs=1), **ARGS)
        r2 = run_fault_campaign(small_config(jobs=2), **ARGS)
        assert np.array_equal(r1.online_error, r2.online_error)
        assert np.array_equal(r1.traditional_error, r2.traditional_error)

    def test_backends_do_not_change_results(self):
        r1 = run_fault_campaign(small_config(backend="packed"), **ARGS)
        r2 = run_fault_campaign(small_config(backend="wave"), **ARGS)
        assert np.array_equal(r1.online_error, r2.online_error)
        assert np.array_equal(r1.traditional_error, r2.traditional_error)

    def test_seed_changes_results(self):
        r1 = run_fault_campaign(small_config(), **ARGS)
        r2 = run_fault_campaign(small_config(seed=1), **ARGS)
        # the online curve can legitimately be all-zero at both seeds
        # (that robustness is the point); the traditional curve is not
        assert not np.array_equal(r1.traditional_error, r2.traditional_error)


class TestCacheAndResume:
    def test_round_trip_through_cache(self, tmp_path):
        config = small_config(cache_dir=str(tmp_path))
        r1 = run_fault_campaign(config, **ARGS)
        assert r1.run_stats.cache == "miss"
        r2 = run_fault_campaign(config, **ARGS)
        assert r2.run_stats.cache == "hit"
        assert isinstance(r2, FaultCampaignResult)
        assert np.array_equal(r1.online_error, r2.online_error)
        assert np.array_equal(r1.rates, r2.rates)

    def test_resume_from_checkpoints_is_bit_identical(self, tmp_path):
        golden = run_fault_campaign(small_config(), **ARGS)
        config = small_config(cache_dir=str(tmp_path))
        first = run_fault_campaign(config, **ARGS)
        # drop the merged result but keep the per-shard checkpoints —
        # the state a killed campaign leaves behind
        dropped = 0
        for path in tmp_path.glob("*.json"):
            meta = json.loads(path.read_text())
            if meta.get("kind") == "fault_campaign":
                path.unlink()
                (tmp_path / f"{path.stem}.npz").unlink(missing_ok=True)
                dropped += 1
        assert dropped == 1
        resumed = run_fault_campaign(config, **ARGS)
        assert resumed.fault_stats.shards_resumed == (
            resumed.fault_stats.shards_total
        )
        assert resumed.run_stats.num_shards == 0  # nothing recomputed
        for r in (first, resumed):
            assert np.array_equal(golden.online_error, r.online_error)
            assert np.array_equal(
                golden.traditional_error, r.traditional_error
            )

    def test_partial_checkpoints_recompute_only_missing(self, tmp_path):
        config = small_config(cache_dir=str(tmp_path))
        run_fault_campaign(config, **ARGS)
        # wipe the merged result and *one* shard checkpoint
        victims = []
        for path in sorted(tmp_path.glob("*.json")):
            meta = json.loads(path.read_text())
            if meta.get("kind") == "fault_campaign":
                path.unlink()
                (tmp_path / f"{path.stem}.npz").unlink(missing_ok=True)
            elif meta.get("kind") == "_raw" and not victims:
                victims.append(path)
                path.unlink()
        assert victims
        resumed = run_fault_campaign(config, **ARGS)
        assert resumed.run_stats.num_shards == 1  # only the victim reran
        assert resumed.fault_stats.shards_resumed == (
            resumed.fault_stats.shards_total - 1
        )

    def test_corrupt_checkpoint_recomputed(self, tmp_path):
        config = small_config(cache_dir=str(tmp_path))
        golden = run_fault_campaign(config, **ARGS)
        for path in tmp_path.glob("*.json"):
            meta = json.loads(path.read_text())
            if meta.get("kind") == "fault_campaign":
                path.unlink()
                (tmp_path / f"{path.stem}.npz").unlink(missing_ok=True)
        # rot one checkpoint: it must quarantine and recompute
        victim = sorted(
            p for p in tmp_path.glob("*.json")
            if json.loads(p.read_text()).get("kind") == "_raw"
        )[0]
        victim.write_text("{rotten")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            resumed = run_fault_campaign(config, **ARGS)
        assert np.array_equal(golden.online_error, resumed.online_error)
