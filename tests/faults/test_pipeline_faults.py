"""Hardened runner vs injected pipeline faults: crashes and hangs."""

import numpy as np
import pytest

from repro.faults import FaultyPipelineWorker, PipelineFaultPlan
from repro.faults.pipeline import CRASH_EXIT_CODE
from repro.runners import ParallelRunner


def _square(payload):
    return payload["shard"] ** 2


def _make_tasks(n):
    return [{"shard": i} for i in range(n)]


class TestSentinels:
    def test_fault_once_tracks_attempts_across_instances(self, tmp_path):
        plan = PipelineFaultPlan(sentinel_dir=str(tmp_path), crash_shards=(0,))
        worker = FaultyPipelineWorker(_square, plan)
        # simulate "first attempt" bookkeeping without actually crashing
        assert worker._first_attempt("probe")
        # a retry in a *fresh process* sees the sentinel file
        again = FaultyPipelineWorker(_square, plan)
        assert not again._first_attempt("probe")

    def test_clean_shards_pass_through(self, tmp_path):
        plan = PipelineFaultPlan(sentinel_dir=str(tmp_path))
        worker = FaultyPipelineWorker(_square, plan)
        assert worker({"shard": 3}) == 9

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE not in (0, 1)


class TestCrashRetry:
    def test_crashed_shard_is_retried_to_completion(self, tmp_path):
        plan = PipelineFaultPlan(
            sentinel_dir=str(tmp_path), crash_shards=(1,)
        )
        worker = FaultyPipelineWorker(_square, plan)
        runner = ParallelRunner(jobs=2, backoff=0.01)
        results = runner.map(worker, _make_tasks(4))
        assert results == [0, 1, 4, 9]
        assert runner.stats.retries >= 1
        assert runner.stats.pool_failures >= 1

    def test_persistent_crasher_degrades_to_inline(self, tmp_path):
        # shard 0 crashes its pool; with a budget of one pool loss the
        # runner must give up on pools and finish inline (the sentinel
        # left by the crashed attempt keeps the inline pass safe)
        plan = PipelineFaultPlan(
            sentinel_dir=str(tmp_path), crash_shards=(0,), fault_once=True
        )
        worker = FaultyPipelineWorker(_square, plan)
        runner = ParallelRunner(jobs=2, max_pool_failures=1, backoff=0.01)
        results = runner.map(worker, _make_tasks(3))
        assert results == [0, 1, 4]
        assert runner.stats.degraded


class TestHangTimeout:
    def test_hung_shard_times_out_and_retries(self, tmp_path):
        plan = PipelineFaultPlan(
            sentinel_dir=str(tmp_path), hang_shards=(0,), hang_seconds=3.0
        )
        worker = FaultyPipelineWorker(_square, plan)
        runner = ParallelRunner(jobs=2, backoff=0.01, shard_timeout=0.5)
        results = runner.map(worker, _make_tasks(3))
        assert results == [0, 1, 4]
        assert runner.stats.timeouts >= 1
        assert runner.stats.retries >= 1

    def test_no_timeout_without_budget(self, tmp_path):
        plan = PipelineFaultPlan(
            sentinel_dir=str(tmp_path), hang_shards=(0,), hang_seconds=0.3
        )
        worker = FaultyPipelineWorker(_square, plan)
        runner = ParallelRunner(jobs=2, backoff=0.01)  # shard_timeout=None
        results = runner.map(worker, _make_tasks(2))
        assert results == [0, 1]
        assert runner.stats.timeouts == 0

    def test_shard_timeout_validated(self):
        with pytest.raises(ValueError):
            ParallelRunner(jobs=2, shard_timeout=0)


class TestMergeStillDeterministic:
    def test_faulted_run_merges_identically(self, tmp_path):
        """Crash + retry must not change the merged numbers."""
        clean = ParallelRunner(jobs=1).map(_square, _make_tasks(5))
        plan = PipelineFaultPlan(
            sentinel_dir=str(tmp_path), crash_shards=(2,)
        )
        worker = FaultyPipelineWorker(_square, plan)
        faulted = ParallelRunner(jobs=2, backoff=0.01).map(
            worker, _make_tasks(5)
        )
        assert np.array_equal(clean, faulted)
