"""Shared fixtures of the synthesizer suite.

``prodsum`` is the canonical mixed-optimal datapath of the acceptance
criteria: four operators (three multipliers, one adder), two outputs,

    prod = (x*y) * (w*v)        sum = x*y + w*v

At 6 digits the inner products fit narrow (7-bit) array multipliers
while the outer product would need a 14-bit one, so there is a capture-
depth window where the mixed {inner: traditional, outer: online} design
is feasible and the all-traditional one is not — the window that puts a
mixed assignment on the Pareto front.
"""

import pytest

from repro.core.synthesis import Datapath


def build_prodsum(ndigits: int = 6) -> Datapath:
    dp = Datapath(ndigits=ndigits)
    x, y = dp.input("x"), dp.input("y")
    w, v = dp.input("w"), dp.input("v")
    p, q = x * y, w * v
    dp.output("prod", p * q)
    dp.output("sum", p + q)
    return dp


@pytest.fixture
def prodsum() -> Datapath:
    return build_prodsum()
