"""Tests of the operator-spec registry and its timing/area/error hooks."""

import math
from fractions import Fraction

import pytest

from repro.synth.spec import (
    INPUT_QUANTIZATION_FACTOR,
    OM_TRUNCATION_FACTOR,
    OperatorSpec,
    default_spec_name,
    operator_spec,
    registered_operators,
    spec_area,
    spec_stages,
    stage_quantum,
)

N, DELTA = 6, 3


class TestRegistry:
    def test_builtin_specs_registered(self):
        for name in (
            "online-mult",
            "array-mult",
            "online-add",
            "kogge-stone-add",
            "rca-add",
        ):
            assert operator_spec(name).name == name

    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="online-mult"):
            operator_spec("wallace-mult")

    def test_filters(self):
        muls = registered_operators(kind="mul")
        assert {s.name for s in muls} == {"online-mult", "array-mult"}
        online = registered_operators(style="online")
        assert all(s.style == "online" for s in online)
        assert {s.name for s in registered_operators("add", "traditional")} == {
            "kogge-stone-add",
            "rca-add",
        }

    def test_default_spec_names(self):
        assert default_spec_name("mul", "online") == "online-mult"
        assert default_spec_name("mul", "traditional") == "array-mult"
        assert default_spec_name("add", "online") == "online-add"
        assert default_spec_name("add", "traditional") == "kogge-stone-add"

    def test_default_spec_unknown_pair(self):
        with pytest.raises(ValueError, match="no default operator"):
            default_spec_name("mul", "stochastic")

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="style"):
            OperatorSpec(name="x", style="quantum", kind="mul", build=lambda n: None)
        with pytest.raises(ValueError, match="kind"):
            OperatorSpec(name="x", style="online", kind="div", build=lambda n: None)


class TestTiming:
    def test_stage_quantum_is_exact_fraction(self):
        mu = stage_quantum(N, DELTA)
        assert isinstance(mu, Fraction)
        # the N-digit online multiplier's unit-gate critical path divided
        # by its N + delta stages; pinned for the canonical geometry
        assert mu == Fraction(20, 9)

    def test_online_mult_stages_is_settle_depth(self):
        spec = operator_spec("online-mult")
        assert spec.stages(N, DELTA) == N + DELTA
        assert spec.stages(8, DELTA) == 8 + DELTA

    def test_traditional_stages_grow_with_width(self):
        spec = operator_spec("array-mult")
        narrow = spec.stages(N, DELTA, width=N + 1)
        wide = spec.stages(N, DELTA, width=2 * (N + 1))
        assert 1 <= narrow < wide
        # the product-of-products window: a first-level array multiplier
        # settles strictly under the online settle depth while the
        # double-width one does not — the capture-depth band where only
        # mixed assignments are feasible
        assert narrow < N + DELTA <= wide

    def test_stages_memoized(self):
        spec = operator_spec("kogge-stone-add")
        assert spec_stages(spec, N, DELTA, 8) == spec_stages(spec, N, DELTA, 8)

    def test_area_positive_and_memoized(self):
        spec = operator_spec("array-mult")
        a1 = spec_area(spec, N, DELTA, N + 1)
        assert a1.luts > 0
        assert spec.area(N, DELTA, width=N + 1) is a1


class TestErrorModel:
    def test_online_mult_settled_error_is_truncation_floor(self):
        spec = operator_spec("online-mult")
        settled = spec.error_at(N, DELTA, N + DELTA)
        assert settled == pytest.approx(OM_TRUNCATION_FACTOR * 2.0**-N)
        # deeper capture cannot improve on the truncation floor
        assert spec.error_at(N, DELTA, N + DELTA + 5) == settled

    def test_online_mult_error_monotone_in_depth(self):
        spec = operator_spec("online-mult")
        errs = [spec.error_at(N, DELTA, b) for b in range(DELTA + 1, N + DELTA + 1)]
        assert all(e >= n for e, n in zip(errs, errs[1:]))
        assert errs[0] > errs[-1]

    def test_traditional_cliff(self):
        spec = operator_spec("array-mult")
        rated = spec.stages(N, DELTA, width=N + 1)
        assert math.isinf(spec.error_at(N, DELTA, rated - 1, width=N + 1))
        assert spec.error_at(N, DELTA, rated, width=N + 1) == 0.0

    def test_online_add_exact_from_one_stage(self):
        spec = operator_spec("online-add")
        assert math.isinf(spec.error_at(N, DELTA, 0))
        assert spec.error_at(N, DELTA, 1) == 0.0

    def test_quantization_constants(self):
        assert 0 < INPUT_QUANTIZATION_FACTOR <= 0.5
        assert 0 < OM_TRUNCATION_FACTOR <= 1.0
