"""Tests of the analytical whole-datapath prediction (coarse ranking)."""

import math

import pytest

from repro.synth.model import (
    MODEL_TOLERANCE_FACTOR,
    model_tolerance_floor,
    predict_design,
    within_model_tolerance,
)
from repro.synth.search import enumerate_assignments
from repro.synth.spec import operator_spec, stage_quantum

N, DELTA = 6, 3


def _assignments_by_style(graph):
    """The prodsum grid keyed by (inner, outer) multiplier styles."""
    by_style = {}
    for assign in enumerate_assignments(graph):
        styles = tuple(
            operator_spec(assign[label]).style
            for label in sorted(assign)
            if operator_spec(assign[label]).kind == "mul"
        )
        by_style[styles] = assign
    return by_style


class TestToleranceBand:
    def test_exact_agreement(self):
        assert within_model_tolerance(0.01, 0.01, N)

    def test_absolute_floor(self):
        floor = model_tolerance_floor(N)
        assert floor == 2.0**-N
        # both below one ULP of each other: always within tolerance,
        # even at extreme ratios
        assert within_model_tolerance(floor / 100, floor / 2, N)
        assert within_model_tolerance(0.0, floor, N)

    def test_multiplicative_band_edges(self):
        base = 10 * model_tolerance_floor(N)
        assert within_model_tolerance(base * MODEL_TOLERANCE_FACTOR, base, N)
        assert within_model_tolerance(base / MODEL_TOLERANCE_FACTOR, base, N)
        assert not within_model_tolerance(base * MODEL_TOLERANCE_FACTOR * 4, base, N)
        assert not within_model_tolerance(base / (MODEL_TOLERANCE_FACTOR * 4), base, N)

    def test_zero_against_large(self):
        assert not within_model_tolerance(0.0, 1.0, N)
        assert not within_model_tolerance(1.0, 0.0, N)


class TestPredictDesign:
    @pytest.fixture()
    def graph(self, prodsum):
        return prodsum.to_graph()

    def test_all_online_feasible_when_overclocked(self, graph):
        assign = _assignments_by_style(graph)[("online", "online", "online")]
        p = predict_design(graph, assign, N, DELTA, b=5)
        assert p.feasible
        assert 0 < p.abs_error < 1
        assert p.pipeline_depth == 2  # inner product -> outer op
        assert p.latency_stages == 2 * 5
        assert p.latency_gates == pytest.approx(
            10 * float(stage_quantum(N, DELTA))
        )
        assert len(p.modules) == 4  # three multipliers + one adder
        assert p.area_luts == sum(m.area_luts for m in p.modules)

    def test_all_traditional_cliff_at_rated_depth(self, graph):
        styles = ("traditional", "traditional", "traditional")
        assign = _assignments_by_style(graph)[styles]
        rated = max(
            m.stages
            for m in predict_design(graph, assign, N, DELTA, b=30).modules
        )
        # the double-width outer multiplier rates deeper than the narrow
        # inner ones: one stage short of it the design is infeasible
        assert rated > operator_spec("array-mult").stages(N, DELTA, width=N + 1)
        below = predict_design(graph, assign, N, DELTA, b=rated - 1)
        assert not below.feasible
        assert math.isinf(below.abs_error)
        assert math.isinf(below.mre_percent)
        at = predict_design(graph, assign, N, DELTA, b=rated)
        assert at.feasible
        # exact operators: only input quantization remains
        assert at.abs_error < 2.0 ** -(N - 3)

    def test_bridge_error_charged_on_mixed(self):
        from repro.core.synthesis import Datapath
        from repro.synth.model import BRIDGE_ERROR_FACTOR

        # single-output chain z = (x*y) * w: with the inner multiplier
        # traditional and the outer online, the inner product crosses
        # the truncating bridge (0.5 ULP expected), which costs more
        # than the settled online truncation (0.25 ULP) it replaces
        dp = Datapath(ndigits=N)
        x, y, w = dp.input("x"), dp.input("y"), dp.input("w")
        dp.output("z", (x * y) * w)
        graph = dp.to_graph()
        by_style = _assignments_by_style(graph)
        b = N + DELTA  # everything online is settled here
        online = predict_design(
            graph, by_style[("online", "online")], N, DELTA, b
        )
        mixed = predict_design(
            graph, by_style[("traditional", "online")], N, DELTA, b
        )
        assert mixed.feasible
        assert mixed.abs_error > online.abs_error
        assert BRIDGE_ERROR_FACTOR * 2.0**-N > operator_spec(
            "online-mult"
        ).error_at(N, DELTA, b)

    def test_mre_and_snr_consistent(self, graph):
        assign = _assignments_by_style(graph)[("online", "online", "online")]
        p = predict_design(graph, assign, N, DELTA, b=6)
        assert p.mre_percent == pytest.approx(
            100.0 * p.abs_error / p.mean_abs_out
        )
        assert p.snr_db == pytest.approx(
            20.0 * math.log10(p.mean_abs_out / p.abs_error)
        )

    def test_deeper_capture_never_predicts_worse(self, graph):
        assign = _assignments_by_style(graph)[("online", "online", "online")]
        errs = [
            predict_design(graph, assign, N, DELTA, b).abs_error
            for b in range(DELTA + 1, N + DELTA + 1)
        ]
        assert all(a >= b for a, b in zip(errs, errs[1:]))
