"""Acceptance tests of :func:`run_synthesis` — the auto-synthesizer
searched end to end on the mixed-optimal prodsum datapath: prune rate,
model tolerance, Pareto front, jobs-determinism and cache dedup."""

import numpy as np
import pytest

from repro.core.synthesis import Datapath
from repro.obs.metrics import metrics
from repro.runners.config import RunConfig
from repro.synth.search import (
    DEFAULT_PERIODS,
    AccuracyTarget,
    enumerate_assignments,
    run_synthesis,
    steps_for_periods,
)
from repro.synth.spec import operator_spec

from .conftest import build_prodsum

N = 6
TARGET = AccuracyTarget("mre", 5.0)


def _config(**overrides):
    kwargs = dict(
        ndigits=N, seed=2014, jobs=1, cache_dir=None, shard_size=1000
    )
    kwargs.update(overrides)
    return RunConfig(**kwargs)


def _mul_styles(assignment):
    return {
        operator_spec(spec).style
        for spec in assignment.values()
        if operator_spec(spec).kind == "mul"
    }


@pytest.fixture(scope="module")
def base_run():
    """One full search plus the metrics it emitted (shared, read-only)."""
    metrics().reset()
    report = run_synthesis(
        _config(), build_prodsum(), TARGET, num_samples=2000
    )
    return report, metrics().snapshot()["counters"]


class TestEnumeration:
    def test_every_multiplier_combination(self, prodsum):
        graph = prodsum.to_graph()
        assignments = enumerate_assignments(graph)
        assert len(assignments) == 8  # 2^3 multiplier styles
        keys = {tuple(sorted(a.items())) for a in assignments}
        assert len(keys) == 8

    def test_adders_follow_the_design_style(self, prodsum):
        graph = prodsum.to_graph()
        add_label = next(
            n["label"] for n in graph["nodes"] if n["kind"] == "add"
        )
        for assign in enumerate_assignments(graph):
            mul_styles = _mul_styles(assign)
            expected = (
                "kogge-stone-add"
                if mul_styles == {"traditional"}
                else "online-add"
            )
            assert assign[add_label] == expected

    def test_steps_for_periods(self):
        # settle depth 9 at n=6: a unit period is exactly the settle depth
        assert steps_for_periods([1.0], N, 3) == [9]
        # duplicates collapse, tiny periods clamp to depth 1, sorted
        steps = steps_for_periods([0.01, 0.5, 0.5, 2.0], N, 3)
        assert steps == sorted(set(steps))
        assert steps[0] == 1
        assert steps_for_periods(DEFAULT_PERIODS, N, 3) == steps_for_periods(
            tuple(reversed(DEFAULT_PERIODS)), N, 3
        )

    def test_target_validation(self):
        with pytest.raises(ValueError, match="mre"):
            AccuracyTarget("rmse", 1.0)

    def test_operatorless_datapath_rejected(self):
        dp = Datapath(ndigits=N)
        dp.output("y", dp.input("x"))
        with pytest.raises(ValueError, match="no operators"):
            run_synthesis(_config(), dp, TARGET)


class TestAcceptance:
    def test_grid_accounting(self, base_run):
        report, counters = base_run
        assert report.candidates_total > 0
        assert (
            report.candidates_pruned + report.candidates_verified
            == report.candidates_total
        )
        assert report.candidates_verified == len(report.points)

    def test_analytical_prune_rate_via_metric(self, base_run):
        """>= 50% of the grid never reaches vector verification, and the
        observability counters agree with the report exactly."""
        report, counters = base_run
        assert counters["synth.candidates_total"] == report.candidates_total
        assert counters["synth.candidates_pruned"] == report.candidates_pruned
        assert (
            counters["synth.candidates_verified"]
            == report.candidates_verified
        )
        assert report.candidates_pruned >= 0.5 * report.candidates_total

    def test_every_verified_point_within_model_tolerance(self, base_run):
        report, _ = base_run
        assert report.points, "search verified nothing"
        bad = [p for p in report.design_points() if not p["within_tolerance"]]
        assert bad == []

    def test_pareto_front_and_mixed_assignment(self, base_run):
        report, _ = base_run
        front = report.pareto_front()
        assert front
        # front points are mutually non-dominated
        for a in front:
            for b in front:
                if a is b:
                    continue
                assert not (
                    b["latency_gates"] < a["latency_gates"]
                    and b["measured_abs_error"] < a["measured_abs_error"]
                )
        # the prodsum width window puts a mixed design on the front
        assert any(
            _mul_styles(p["assignment"]) == {"online", "traditional"}
            for p in front
        )

    def test_chosen_is_cheapest_meeting_target(self, base_run):
        report, _ = base_run
        chosen = report.chosen_point
        assert chosen is not None
        assert chosen["meets_target"]
        assert chosen["measured_mre_percent"] <= TARGET.value
        meeting = [
            p for p in report.design_points() if p["meets_target"]
        ]
        assert chosen["latency_gates"] == min(
            p["latency_gates"] for p in meeting
        )

    def test_chosen_modules_describe_the_assignment(self, base_run):
        report, _ = base_run
        specs = {m["label"]: m["spec"] for m in report.modules}
        assert specs == report.chosen_assignment

    def test_uncached_run_reports_cache_off(self, base_run):
        report, _ = base_run
        assert report.run_stats is not None
        assert report.run_stats.cache == "off"

    def test_chosen_assignment_replays_through_synthesize(
        self, base_run, prodsum
    ):
        report, _ = base_run
        assignment = report.chosen_assignment
        synthesized = prodsum.synthesize("online", assignment=assignment)
        assert synthesized is not None
        with pytest.raises(ValueError):
            prodsum.synthesize(
                "online", assignment={"not-a-node": "online-mult"}
            )


class TestDeterminismAndCache:
    def test_jobs_do_not_affect_results(self, prodsum):
        serial = run_synthesis(
            _config(jobs=1), prodsum, TARGET, num_samples=2000
        )
        pooled = run_synthesis(
            _config(jobs=2), prodsum, TARGET, num_samples=2000
        )
        assert serial.points == pooled.points
        assert serial.chosen == pooled.chosen
        for name in type(serial)._array_fields:
            a, b = getattr(serial, name), getattr(pooled, name)
            assert np.array_equal(a, b, equal_nan=True)

    def test_second_run_is_served_from_cache(self, prodsum, tmp_path):
        config = _config(cache_dir=str(tmp_path))
        first = run_synthesis(config, prodsum, TARGET, num_samples=1500)
        assert first.run_stats.cache == "miss"
        second = run_synthesis(config, prodsum, TARGET, num_samples=1500)
        assert second.run_stats.cache == "hit"
        assert second.points == first.points
        for name in type(first)._array_fields:
            assert np.array_equal(
                getattr(first, name), getattr(second, name), equal_nan=True
            )

    def test_explicit_steps_override_periods(self, prodsum):
        report = run_synthesis(
            _config(),
            prodsum,
            TARGET,
            steps=[N + 3],
            num_samples=1000,
        )
        assert report.points
        assert {p["b"] for p in report.points} == {N + 3}
