"""Round-trip tests of :class:`SynthesisReport` through the Result
registry and the JSON+npz cache — the serialization half of the
synthesizer (satellite: property-based, non-finite values included)."""

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.synthesis import Datapath
from repro.runners.cache import ResultCache, cache_key
from repro.runners.results import registered_kinds, result_from_dict
from repro.synth.report import SynthesisReport


def _tiny_graph():
    dp = Datapath(ndigits=6)
    x, y = dp.input("x"), dp.input("y")
    dp.output("p", x * y)
    return dp.to_graph()


GRAPH = _tiny_graph()
MUL_LABEL = next(
    n["label"] for n in GRAPH["nodes"] if n["kind"] == "mul"
)

# full float64 range including the values JSON encoders most often lose
measurements = st.floats(allow_nan=True, allow_infinity=True, width=64)


def _point(i, spec):
    return {
        "assignment": {MUL_LABEL: spec},
        "ndigits": 6,
        "b": 4 + i,
        "period": (4 + i) / 9,
        "latency_stages": 4 + i,
        "pipeline_depth": 1,
        "area_luts": 300 + i,
        "predicted_mre_percent": 0.5 * i,
        "measured_mre_percent": 0.4 * i,
        "meets_target": i % 2 == 0,
        "on_front": i == 0,
        "within_tolerance": True,
    }


def _report(pred, meas, snr, lat, chosen=-1):
    k = len(pred)
    points = [
        _point(i, "online-mult" if i % 2 else "array-mult") for i in range(k)
    ]
    return SynthesisReport(
        graph=GRAPH,
        target_metric="mre",
        target_value=1.0,
        points=points,
        predicted_abs_error=pred,
        measured_abs_error=meas,
        measured_snr_db=snr,
        latency_gates=lat,
        candidates_total=4 * k,
        candidates_pruned=3 * k,
        candidates_verified=k,
        chosen=chosen,
        delta=3,
        num_samples=1000,
        seed=7,
        ref_frac=24,
    )


def _assert_reports_equal(a, b):
    assert b.kind == "synthesis"
    assert b.graph == a.graph
    assert b.points == a.points
    assert b.target_metric == a.target_metric
    assert b.target_value == a.target_value
    assert (
        b.candidates_total,
        b.candidates_pruned,
        b.candidates_verified,
        b.chosen,
        b.delta,
        b.num_samples,
        b.seed,
        b.ref_frac,
    ) == (
        a.candidates_total,
        a.candidates_pruned,
        a.candidates_verified,
        a.chosen,
        a.delta,
        a.num_samples,
        a.seed,
        a.ref_frac,
    )
    for name in SynthesisReport._array_fields:
        got, want = getattr(b, name), getattr(a, name)
        assert got.dtype == np.float64
        # bit-exact including nan positions and signed infinities
        assert np.array_equal(got, want, equal_nan=True)


class TestRegistryRoundTrip:
    def test_kind_registered(self):
        assert registered_kinds()["synthesis"] is SynthesisReport

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(measurements, measurements, measurements, measurements),
            min_size=0,
            max_size=6,
        )
    )
    def test_json_roundtrip_preserves_everything(self, rows):
        pred = [r[0] for r in rows]
        meas = [r[1] for r in rows]
        snr = [r[2] for r in rows]
        lat = [r[3] for r in rows]
        chosen = 0 if rows else -1
        report = _report(pred, meas, snr, lat, chosen=chosen)
        wire = json.loads(json.dumps(report.to_dict()))
        back = result_from_dict(wire)
        assert isinstance(back, SynthesisReport)
        _assert_reports_equal(report, back)

    def test_error_free_point_snr_is_inf(self):
        report = _report([0.0], [0.0], [math.inf], [12.0], chosen=0)
        back = result_from_dict(json.loads(json.dumps(report.to_dict())))
        assert math.isinf(back.measured_snr_db[0])
        assert back.meets_target(0)  # inf SNR under an mre target: mre row
        assert back.chosen_point["measured_snr_db"] == math.inf

    def test_parallel_array_mismatch_rejected(self):
        with pytest.raises(ValueError, match="parallel points"):
            _report([0.1, 0.2], [0.1], [1.0], [2.0])


class TestCacheRoundTrip:
    def test_npz_cache_preserves_nonfinite(self, tmp_path):
        report = _report(
            [0.25, math.nan],
            [math.inf, 0.125],
            [-math.inf, 60.0],
            [10.0, 20.0],
            chosen=1,
        )
        cache = ResultCache(tmp_path)
        key = cache_key(experiment="synth.unit", seed=7)
        cache.put(key, report, {"experiment": "synth.unit", "seed": 7})
        back = cache.get(key)
        assert back is not None
        _assert_reports_equal(report, back)

    def test_cache_miss_on_absent_key(self, tmp_path):
        assert ResultCache(tmp_path).get(cache_key(experiment="nope")) is None

    def test_cache_key_separates_assignments(self):
        base = dict(
            experiment="synth.verify",
            graph=GRAPH,
            ndigits=6,
            delta=3,
            depths=[4, 6, 9],
            num_samples=2000,
            ref_frac=24,
            seed=2014,
            shard_size=2500,
        )
        k_online = cache_key(assignment=[[MUL_LABEL, "online-mult"]], **base)
        k_trad = cache_key(assignment=[[MUL_LABEL, "array-mult"]], **base)
        assert k_online != k_trad
        # and the key is stable for logically equal components
        assert k_online == cache_key(
            assignment=[[MUL_LABEL, "online-mult"]], **dict(base)
        )

    def test_cache_key_separates_depth_grids(self):
        base = dict(experiment="synth.verify", graph=GRAPH, seed=2014)
        assert cache_key(depths=[4, 9], **base) != cache_key(
            depths=[4, 6, 9], **base
        )


class TestViews:
    def test_design_points_fold_arrays_back(self):
        report = _report([0.1, 0.2], [0.3, 0.4], [30.0, 20.0], [9.0, 18.0])
        rows = report.design_points()
        assert [r["measured_abs_error"] for r in rows] == [0.3, 0.4]
        assert [r["latency_gates"] for r in rows] == [9.0, 18.0]
        assert report.pareto_front() == [rows[0]]  # only i==0 is on_front

    def test_chosen_accessors(self):
        none = _report([], [], [], [])
        assert none.chosen_point is None
        assert none.chosen_assignment is None
        some = _report([0.1], [0.1], [40.0], [9.0], chosen=0)
        assert some.chosen_assignment == {MUL_LABEL: "array-mult"}

    def test_meets_target_snr_metric(self):
        report = _report([0.1], [0.1], [42.0], [9.0])
        report.target_metric = "snr"
        report.target_value = 40.0
        assert report.meets_target(0)
        report.target_value = 50.0
        assert not report.meets_target(0)

    def test_summary_mentions_grid_accounting(self):
        report = _report([0.1], [0.1], [40.0], [9.0], chosen=0)
        text = report.summary()
        assert "1 verified" in text and "3 pruned" in text
        assert "4 candidates" in text
