"""Unit tests for the digit-selection function (Eq. (2))."""

from fractions import Fraction

from repro.core.selection import (
    NUM_INPUT_BITS,
    estimate_quarters,
    residual_in_range,
    select_digit,
    select_from_estimate,
    selection_tables,
)


class TestSelectDigit:
    def test_thresholds(self):
        assert select_digit(Fraction(1, 2)) == 1
        assert select_digit(Fraction(49, 100)) == 0
        assert select_digit(Fraction(-1, 2)) == 0
        assert select_digit(Fraction(-51, 100)) == -1
        assert select_digit(0) == 0
        assert select_digit(Fraction(7, 4)) == 1
        assert select_digit(Fraction(-7, 4)) == -1


class TestEstimate:
    def test_all_zero(self):
        assert estimate_quarters((0,) * NUM_INPUT_BITS) == 0

    def test_weights(self):
        # P_0 = +1 alone: V = 1 -> 4 quarters
        bits = [0] * NUM_INPUT_BITS
        bits[0] = 1
        assert estimate_quarters(tuple(bits)) == 4
        # P_2 = -1 alone: -1 quarter
        bits = [0] * NUM_INPUT_BITS
        bits[5] = 1
        assert estimate_quarters(tuple(bits)) == -1
        # boundary carry g3 adds +1, borrow p3 adds -1
        bits = [0] * NUM_INPUT_BITS
        bits[6] = 1
        assert estimate_quarters(tuple(bits)) == 1
        bits = [0] * NUM_INPUT_BITS
        bits[7] = 1
        assert estimate_quarters(tuple(bits)) == -1

    def test_redundant_pairs_cancel(self):
        bits = [1, 1, 1, 1, 1, 1, 1, 1]
        assert estimate_quarters(tuple(bits)) == 0


class TestSelectFromEstimate:
    def test_consistent_with_eq2(self):
        for vq in range(-7, 8):
            z, _r1, _r2 = select_from_estimate(vq)
            assert z == select_digit(Fraction(vq, 4))

    def test_residual_identity(self):
        """V - z == r1/2 + r2/4 whenever the estimate is reachable."""
        for emit_z in (True, False):
            for vq in range(-9, 10):
                if not residual_in_range(vq, emit_z):
                    continue
                z, r1, r2 = select_from_estimate(vq, emit_z)
                assert 2 * r1 + r2 == vq - 4 * z

    def test_residual_digits_valid(self):
        for vq in range(-15, 16):
            _z, r1, r2 = select_from_estimate(vq)
            assert r1 in (-1, 0, 1)
            assert r2 in (-1, 0, 1)

    def test_no_z_variant(self):
        z, r1, r2 = select_from_estimate(3, emit_z=False)
        assert z == 0
        assert 2 * r1 + r2 == 3

    def test_saturation_out_of_range(self):
        _z, r1, r2 = select_from_estimate(15)
        assert 2 * r1 + r2 == 3  # clamped


class TestResidualRange:
    def test_emitting_range(self):
        assert residual_in_range(7)
        assert residual_in_range(-7)
        assert not residual_in_range(8)

    def test_no_z_range(self):
        assert residual_in_range(3, emit_z=False)
        assert not residual_in_range(4, emit_z=False)


class TestTables:
    def test_sizes_and_keys(self):
        t = selection_tables(True)
        assert sorted(t) == ["r1n", "r1p", "r2n", "r2p", "zn", "zp"]
        assert all(len(v) == 256 for v in t.values())
        t0 = selection_tables(False)
        assert "zp" not in t0

    def test_tables_encode_selection(self):
        t = selection_tables(True)
        for idx in range(256):
            bits = tuple((idx >> k) & 1 for k in range(8))
            vq = estimate_quarters(bits)
            z, r1, r2 = select_from_estimate(vq)
            assert t["zp"][idx] - t["zn"][idx] == z
            assert t["r1p"][idx] - t["r1n"][idx] == r1
            assert t["r2p"][idx] - t["r2n"][idx] == r2

    def test_z_never_both_rails(self):
        t = selection_tables(True)
        for idx in range(256):
            assert not (t["zp"][idx] and t["zn"][idx])
