"""Tests for redundant <-> two's-complement conversion."""

import itertools
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conversion import (
    bits_to_scaled_int,
    digits_to_scaled_int,
    on_the_fly_convert,
    port_values_from_digits,
    scaled_int_to_digits,
    sd_to_twos_complement,
)
from repro.numrep.signed_digit import SDNumber

digit_list = st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=14)


class TestOnTheFly:
    @given(digit_list)
    @settings(max_examples=100, deadline=None)
    def test_matches_value(self, digits):
        scaled = on_the_fly_convert(digits)
        expect = SDNumber(tuple(digits)).value() * 2 ** len(digits)
        assert scaled == expect

    def test_exhaustive_4_digits(self):
        for digits in itertools.product((-1, 0, 1), repeat=4):
            assert on_the_fly_convert(digits) == SDNumber(digits).value() * 16

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            on_the_fly_convert([0, 2])


class TestSdToTwosComplement:
    def test_positive(self):
        x = SDNumber((1, 0, -1))  # 3/8
        assert sd_to_twos_complement(x, 4) == 0b0011

    def test_negative(self):
        x = SDNumber((-1, 0, 1))  # -3/8
        assert sd_to_twos_complement(x, 4) == 0b1101

    def test_unrepresentable(self):
        x = SDNumber((1, 1, 1))  # 7/8 needs 3 fraction bits
        with pytest.raises(ValueError):
            sd_to_twos_complement(x, 3)


class TestVectorized:
    def test_digits_to_scaled_int(self):
        digits = np.array([[1, -1], [0, 1], [-1, 0]], dtype=np.int8)
        vals = digits_to_scaled_int(digits)
        # col0: 1/2 - 1/8 = 3/8 -> 3 ; col1: -1/2 + 1/4 = -1/4 -> -2
        assert vals.tolist() == [3, -2]

    def test_bits_to_scaled_int_signs(self):
        bits = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.uint8)  # LSB first
        vals = bits_to_scaled_int(bits)
        assert vals.tolist() == [3, -4]

    @given(st.lists(st.integers(-255, 255), min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_scaled_int_digit_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        digits = scaled_int_to_digits(arr, 9)
        back = digits_to_scaled_int(digits)
        assert np.array_equal(back, arr)

    def test_scaled_int_overflow(self):
        with pytest.raises(ValueError):
            scaled_int_to_digits(np.array([256]), 8)

    def test_port_values(self):
        digits = np.array([[1, 0, -1]], dtype=np.int8)
        ports, n = port_values_from_digits("x", digits)
        assert n == 1
        assert ports["xp0"].tolist() == [1, 0, 0]
        assert ports["xn0"].tolist() == [0, 0, 1]


class TestRoundTripProperties:
    """Property-based round trips across the conversion layer.

    The scalar (``on_the_fly_convert``), object (``SDNumber``), and
    batched NumPy (``digits_to_scaled_int`` / ``scaled_int_to_digits``)
    conversion paths must agree with each other and survive round trips
    for every digit string — negative values and range boundaries
    included.
    """

    @given(digit_list)
    @settings(max_examples=150, deadline=None)
    def test_on_the_fly_matches_batched(self, digits):
        arr = np.asarray(digits, dtype=np.int8)[:, None]
        assert on_the_fly_convert(digits) == int(digits_to_scaled_int(arr)[0])

    @given(digit_list)
    @settings(max_examples=150, deadline=None)
    def test_twos_complement_round_trip_value(self, digits):
        from repro.numrep.signed_digit import sd_from_twos_complement

        number = SDNumber(tuple(digits))
        width = len(digits) + 1
        raw = sd_to_twos_complement(number, width)
        assert 0 <= raw < 2**width
        back = sd_from_twos_complement(raw, width, frac_bits=width - 1)
        assert back.value() == number.value()

    @given(st.integers(1, 12), st.data())
    @settings(max_examples=150, deadline=None)
    def test_scaled_int_round_trip_with_negatives(self, ndigits, data):
        limit = (1 << ndigits) - 1
        values = data.draw(
            st.lists(st.integers(-limit, limit), min_size=1, max_size=32)
        )
        arr = np.asarray(values, dtype=np.int64)
        digits = scaled_int_to_digits(arr, ndigits)
        assert digits.dtype == np.int8
        np.testing.assert_array_equal(digits_to_scaled_int(digits), arr)

    def test_scaled_int_boundaries(self):
        for ndigits in (1, 4, 8, 12):
            limit = (1 << ndigits) - 1
            arr = np.asarray([-limit, -1, 0, 1, limit], dtype=np.int64)
            np.testing.assert_array_equal(
                digits_to_scaled_int(scaled_int_to_digits(arr, ndigits)), arr
            )

    @given(st.integers(2, 14), st.data())
    @settings(max_examples=150, deadline=None)
    def test_bits_to_scaled_int_matches_decoder(self, width, data):
        from repro.numrep.fixed_point import (
            int_to_bits,
            twos_complement_decode,
        )

        raw = data.draw(st.integers(0, 2**width - 1))
        bits = np.asarray(int_to_bits(raw, width), dtype=np.uint8)[:, None]
        assert int(bits_to_scaled_int(bits)[0]) == twos_complement_decode(
            raw, width
        )
