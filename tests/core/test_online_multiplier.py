"""Tests for the radix-2 digit-parallel online multiplier (Algorithm 1)."""

import itertools
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.conversion import digits_to_scaled_int, port_values_from_digits
from repro.core.online_multiplier import (
    ONLINE_DELTA,
    OnlineMultiplier,
    build_online_multiplier,
    online_multiply,
)
from repro.netlist.delay import UnitDelay
from repro.netlist.sim import evaluate
from repro.numrep.signed_digit import SDNumber


def _digits(rng, n, size):
    return rng.integers(-1, 2, size=(n, size)).astype(np.int8)


class TestStructure:
    def test_stage_count(self):
        om = OnlineMultiplier(8)
        assert om.num_stages == 8 + ONLINE_DELTA
        assert list(om.stage_indices()) == list(range(-3, 8))

    def test_first_delta_stages_emit_nothing(self):
        om = OnlineMultiplier(8)
        for j in range(-3, 0):
            assert not om.stage_emits_digit(j)
        for j in range(0, 8):
            assert om.stage_emits_digit(j)

    def test_last_delta_stages_have_no_append(self):
        om = OnlineMultiplier(8)
        appended = [j for j in om.stage_indices() if om.stage_has_append(j)]
        assert len(appended) == 8  # one per input digit
        assert appended[-1] == 8 - ONLINE_DELTA - 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            OnlineMultiplier(0)
        with pytest.raises(ValueError):
            OnlineMultiplier(4, delta=0)


class TestConvergence:
    def test_exhaustive_n3(self):
        om = OnlineMultiplier(3)
        for xd in itertools.product((-1, 0, 1), repeat=3):
            for yd in itertools.product((-1, 0, 1), repeat=3):
                x, y = SDNumber(xd), SDNumber(yd)
                z = om.multiply(x, y)
                err = abs(x.value() * y.value() - z.value())
                assert err < Fraction(1, 2**3)

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=8, max_size=8),
           st.lists(st.sampled_from([-1, 0, 1]), min_size=8, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_random_n8(self, xd, yd):
        x, y = SDNumber(tuple(xd)), SDNumber(tuple(yd))
        z = online_multiply(x, y)
        assert abs(x.value() * y.value() - z.value()) < Fraction(1, 2**8)
        assert len(z.digits) == 8
        assert z.exp_msd == -1

    def test_zero_operand(self):
        om = OnlineMultiplier(6)
        zero = SDNumber.zero(6)
        x = SDNumber((1, -1, 0, 1, 0, -1))
        assert om.multiply(x, zero).value() == 0

    def test_msd_first_property(self):
        """The first k product digits already determine the product to
        within 2^-k plus the online delay — MSD-first output."""
        om = OnlineMultiplier(8)
        x = SDNumber((1, 0, -1, 0, 1, 1, 0, -1))
        y = SDNumber((0, 1, 1, -1, 0, 1, -1, 0))
        z = om.multiply(x, y)
        exact = x.value() * y.value()
        for k in range(1, 9):
            prefix = SDNumber(z.digits[:k]).value()
            assert abs(exact - prefix) <= Fraction(1, 2**k) + Fraction(
                1, 2**8
            )

    def test_operand_validation(self):
        om = OnlineMultiplier(4)
        with pytest.raises(ValueError):
            om.multiply(SDNumber((1, 0)), SDNumber((1, 0, 0, 0)))
        with pytest.raises(ValueError):
            online_multiply(SDNumber((1,)), SDNumber((1, 0)))


class TestNetlistEquivalence:
    @pytest.mark.parametrize("n", [2, 4, 6])
    def test_gate_level_matches_reference(self, n):
        om = OnlineMultiplier(n)
        circ = om.build_circuit()
        circ.validate()
        rng = np.random.default_rng(n)
        size = 400
        xd, yd = _digits(rng, n, size), _digits(rng, n, size)
        ports, _ = port_values_from_digits("x", xd)
        ports_y, _ = port_values_from_digits("y", yd)
        ports.update(ports_y)
        out = evaluate(circ, ports)
        got = np.stack(
            [
                out[f"zp{k}"].astype(np.int8) - out[f"zn{k}"].astype(np.int8)
                for k in range(n)
            ]
        )
        for s in range(size):
            x = SDNumber(tuple(int(v) for v in xd[:, s]))
            y = SDNumber(tuple(int(v) for v in yd[:, s]))
            assert tuple(got[:, s]) == om.multiply(x, y).digits

    def test_build_convenience(self):
        circ = build_online_multiplier(4)
        assert circ.num_gates > 0
        assert "zp0" in circ.output_map


class TestWave:
    def test_settles_to_reference(self):
        n = 6
        om = OnlineMultiplier(n)
        rng = np.random.default_rng(0)
        xd, yd = _digits(rng, n, 300), _digits(rng, n, 300)
        waves = om.wave(xd, yd)
        assert waves.shape == (om.num_stages + 1, n, 300)
        final = waves[-1]
        for s in range(300):
            x = SDNumber(tuple(int(v) for v in xd[:, s]))
            y = SDNumber(tuple(int(v) for v in yd[:, s]))
            assert tuple(final[:, s]) == om.multiply(x, y).digits

    def test_early_ticks_are_wrong_lsd_first(self):
        n = 8
        om = OnlineMultiplier(n)
        rng = np.random.default_rng(1)
        xd, yd = _digits(rng, n, 2000), _digits(rng, n, 2000)
        waves = om.wave(xd, yd)
        final_vals = digits_to_scaled_int(waves[-1])
        b = ONLINE_DELTA + 2
        sampled = digits_to_scaled_int(waves[b])
        err = np.abs(sampled - final_vals)
        assert err.max() > 0
        # errors bounded by the weight of digits beyond the first b - delta
        first_correct = b - ONLINE_DELTA
        assert err.max() <= 2 ** (n - first_correct + 1)

    def test_monotone_settling(self):
        """Error magnitude decreases as the sampling depth grows."""
        n = 8
        om = OnlineMultiplier(n)
        rng = np.random.default_rng(2)
        xd, yd = _digits(rng, n, 3000), _digits(rng, n, 3000)
        waves = om.wave(xd, yd)
        final_vals = digits_to_scaled_int(waves[-1])
        means = []
        for b in range(ONLINE_DELTA + 1, om.num_stages + 1):
            sampled = digits_to_scaled_int(waves[b])
            means.append(float(np.abs(sampled - final_vals).mean()))
        assert all(a >= b for a, b in zip(means, means[1:]))
        assert means[-1] == 0

    def test_shape_validation(self):
        om = OnlineMultiplier(4)
        with pytest.raises(ValueError):
            om.wave(np.zeros((3, 10)), np.zeros((3, 10)))
