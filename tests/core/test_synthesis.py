"""Tests for the datapath-synthesis front-end."""

import numpy as np
import pytest

from repro.core.synthesis import Datapath, explore_latency_accuracy
from repro.netlist.delay import UnitDelay


def _mac_datapath(n=8):
    dp = Datapath(ndigits=n)
    x, y = dp.input("x"), dp.input("y")
    w = dp.const(0.25)
    dp.output("mac", x * y + w * x)
    return dp


def _quantize(values, n=8):
    return np.round(np.asarray(values) * 2**n) / 2**n


class TestDatapathApi:
    def test_duplicate_input(self):
        dp = Datapath()
        dp.input("x")
        with pytest.raises(ValueError):
            dp.input("x")

    def test_duplicate_output(self):
        dp = Datapath()
        x = dp.input("x")
        dp.output("y", x)
        with pytest.raises(ValueError):
            dp.output("y", x)

    def test_const_validation(self):
        dp = Datapath(ndigits=4)
        with pytest.raises(ValueError):
            dp.const(1.5)  # outside (-1, 1)
        with pytest.raises(ValueError):
            dp.const(1 / 32)  # needs 5 fractional digits

    def test_cross_datapath_mixing_rejected(self):
        dp1, dp2 = Datapath(), Datapath()
        x1, x2 = dp1.input("x"), dp2.input("x")
        with pytest.raises(ValueError):
            _ = x1 + x2

    def test_no_outputs_rejected(self):
        dp = Datapath()
        dp.input("x")
        with pytest.raises(ValueError):
            dp.synthesize("online")

    def test_unknown_arithmetic(self):
        dp = _mac_datapath()
        with pytest.raises(ValueError):
            dp.synthesize("ternary")

    def test_sum_into_multiplier_rejected(self):
        dp = Datapath()
        x, y = dp.input("x"), dp.input("y")
        dp.output("bad", (x + y) * x)
        with pytest.raises(ValueError):
            dp.synthesize("online")


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_mac(self, arith):
        dp = _mac_datapath()
        synth = dp.synthesize(arith, UnitDelay())
        rng = np.random.default_rng(0)
        xs = rng.uniform(-0.9, 0.9, 200)
        ys = rng.uniform(-0.9, 0.9, 200)
        run = synth.apply({"x": xs, "y": ys})
        xq, yq = _quantize(xs), _quantize(ys)
        ref = xq * yq + 0.25 * xq
        tol = 3 * 2**-8 if arith == "online" else 1e-12
        assert np.abs(run.correct["mac"] - ref).max() <= tol

    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_subtract_and_negate(self, arith):
        dp = Datapath(ndigits=6)
        x, y = dp.input("x"), dp.input("y")
        dp.output("diff", x - y)
        dp.output("neg", -x)
        synth = dp.synthesize(arith, UnitDelay())
        rng = np.random.default_rng(1)
        xs = _quantize(rng.uniform(-0.9, 0.9, 100), 6)
        ys = _quantize(rng.uniform(-0.9, 0.9, 100), 6)
        run = synth.apply({"x": xs, "y": ys})
        assert np.allclose(run.correct["diff"], xs - ys)
        assert np.allclose(run.correct["neg"], -xs)

    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_product_of_products(self, arith):
        dp = Datapath(ndigits=6)
        x, y = dp.input("x"), dp.input("y")
        dp.output("xyy", (x * y) * y)
        synth = dp.synthesize(arith, UnitDelay())
        xs = _quantize([0.5, -0.75, 0.25], 6)
        ys = _quantize([0.5, 0.5, -0.875], 6)
        run = synth.apply({"x": np.array(xs), "y": np.array(ys)})
        ref = np.asarray(xs) * np.asarray(ys) ** 2
        tol = 5 * 2**-6 if arith == "online" else 1e-12
        assert np.abs(run.correct["xyy"] - ref).max() <= tol

    def test_scalar_constant_promotion(self):
        dp = Datapath(ndigits=6)
        x = dp.input("x")
        dp.output("scaled", 0.5 * x + 0.25)
        synth = dp.synthesize("traditional", UnitDelay())
        xs = _quantize([0.5, -0.5], 6)
        run = synth.apply({"x": np.array(xs)})
        assert np.allclose(run.correct["scaled"], 0.5 * np.asarray(xs) + 0.25)


class TestRunMechanics:
    def test_overclocking_errors_appear(self):
        dp = _mac_datapath()
        synth = dp.synthesize("traditional", UnitDelay())
        rng = np.random.default_rng(2)
        run = synth.apply(
            {"x": rng.uniform(-0.9, 0.9, 300), "y": rng.uniform(-0.9, 0.9, 300)}
        )
        assert run.error_free_step > 0
        hard = run.mean_abs_error(max(1, run.error_free_step // 2))
        assert hard > 0
        assert run.mean_abs_error(run.settle_step) == 0

    def test_encode_range_check(self):
        synth = _mac_datapath().synthesize("online", UnitDelay())
        with pytest.raises(ValueError):
            synth.encode({"x": np.array([1.5]), "y": np.array([0.0])})

    def test_encode_missing_input(self):
        synth = _mac_datapath().synthesize("online", UnitDelay())
        with pytest.raises(ValueError):
            synth.encode({"x": np.array([0.5])})

    def test_area_reports(self):
        dp = _mac_datapath()
        online = dp.synthesize("online", UnitDelay()).area()
        trad = dp.synthesize("traditional", UnitDelay()).area()
        assert online.luts > 0 and trad.luts > 0


class TestExplorer:
    def test_report_structure(self):
        dp = Datapath(ndigits=8)
        x, y = dp.input("x"), dp.input("y")
        dp.output("p", x * y)
        rng = np.random.default_rng(3)
        inputs = {
            "x": rng.uniform(-0.9, 0.9, 400),
            "y": rng.uniform(-0.9, 0.9, 400),
        }
        report = explore_latency_accuracy(
            dp, inputs, budgets_percent=(1.0, 10.0), frequency_factors=(1.05, 1.15)
        )
        for arith in ("traditional", "online"):
            sub = report[arith]
            assert sub["error_free_step"] > 0
            assert len(sub["mre_percent_by_factor"]) == 2
            assert len(sub["speedup_by_budget"]) == 2


class TestChooseDesign:
    def _inputs(self, size=300):
        rng = np.random.default_rng(5)
        return {
            "x": rng.uniform(-0.9, 0.9, size),
            "y": rng.uniform(-0.9, 0.9, size),
        }

    def test_returns_valid_choice(self):
        from repro.core.synthesis import choose_design

        dp = _mac_datapath()
        choice = choose_design(
            dp, self._inputs(), mre_budget_percent=1.0,
            delay_model_factory=UnitDelay,
        )
        assert choice.arithmetic in ("traditional", "online")
        assert choice.clock_step > 0
        assert choice.achieved_mre_percent <= 1.0
        assert choice.area.luts > 0
        assert set(choice.alternatives) <= {"traditional", "online"}

    def test_choice_is_fastest_alternative(self):
        from repro.core.synthesis import choose_design

        dp = _mac_datapath()
        choice = choose_design(
            dp, self._inputs(), mre_budget_percent=5.0,
            delay_model_factory=UnitDelay,
        )
        for info in choice.alternatives.values():
            assert choice.clock_step <= info["clock_step"]

    def test_negative_budget_rejected(self):
        from repro.core.synthesis import choose_design

        dp = _mac_datapath()
        with pytest.raises(ValueError):
            choose_design(dp, self._inputs(50), mre_budget_percent=-1.0)

    def test_zero_budget_still_resolvable(self):
        """At budget 0 each design can at least run at its own f0."""
        from repro.core.synthesis import choose_design

        dp = _mac_datapath()
        choice = choose_design(
            dp, self._inputs(100), mre_budget_percent=0.0,
            delay_model_factory=UnitDelay,
        )
        assert choice.achieved_mre_percent == 0.0
