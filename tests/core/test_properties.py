"""Cross-cutting property tests over the online-arithmetic core.

These tie the four views of the same arithmetic together — value-level
reference, numpy-vectorized reference, stage-delay wave model, gate-level
netlist — and check algebraic laws that any multiplier must satisfy.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernels import bs_add, bs_value
from repro.core.online_multiplier import OnlineMultiplier
from repro.core.ops import IntOps, NumpyOps
from repro.numrep.signed_digit import SDNumber

digits = lambda n: st.lists(st.sampled_from([-1, 0, 1]), min_size=n, max_size=n)


def _vec(ds, start=1):
    return {
        start + k: (1 if d == 1 else 0, 1 if d == -1 else 0)
        for k, d in enumerate(ds)
    }


class TestAlgebraicLaws:
    @given(digits(6), digits(6))
    @settings(max_examples=80, deadline=None)
    def test_multiplication_commutes_in_value(self, xd, yd):
        """z(x, y) and z(y, x) may differ digit-wise (the recurrence is
        asymmetric) but both approximate the same product."""
        om = OnlineMultiplier(6)
        x, y = SDNumber(tuple(xd)), SDNumber(tuple(yd))
        zxy = om.multiply(x, y).value()
        zyx = om.multiply(y, x).value()
        exact = x.value() * y.value()
        assert abs(zxy - exact) < Fraction(1, 2**6)
        assert abs(zyx - exact) < Fraction(1, 2**6)

    @given(digits(6))
    @settings(max_examples=40, deadline=None)
    def test_negation_symmetry(self, xd):
        """(-x) * y approximates -(x * y) to the same tolerance."""
        om = OnlineMultiplier(6)
        x = SDNumber(tuple(xd))
        y = SDNumber((1, 0, -1, 0, 1, 0))
        plus = om.multiply(x, y).value()
        minus = om.multiply(x.negate(), y).value()
        assert abs(plus + minus) < Fraction(2, 2**6)

    @given(digits(6))
    @settings(max_examples=40, deadline=None)
    def test_multiply_by_half(self, xd):
        """x * (1/2) equals x shifted right, within the truncation bound."""
        om = OnlineMultiplier(6)
        x = SDNumber(tuple(xd))
        half = SDNumber((1, 0, 0, 0, 0, 0))
        z = om.multiply(x, half).value()
        assert abs(z - x.value() / 2) < Fraction(1, 2**6)

    @given(st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=8),
           st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=8),
           st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_adder_associative_in_value(self, ad, bd, cd):
        ops = IntOps()
        a, b, c = _vec(ad), _vec(bd), _vec(cd)
        left = bs_add(ops, bs_add(ops, a, b), c)
        right = bs_add(ops, a, bs_add(ops, b, c))
        assert bs_value(left) == bs_value(right)


class TestCrossDomain:
    @given(digits(5), digits(5))
    @settings(max_examples=50, deadline=None)
    def test_numpy_ops_match_int_ops(self, xd, yd):
        """The vectorized provider reproduces the scalar reference."""
        om = OnlineMultiplier(5)

        def bits(ds):
            return [
                (
                    np.array([1 if d == 1 else 0], dtype=np.uint8),
                    np.array([1 if d == -1 else 0], dtype=np.uint8),
                )
                for d in ds
            ]

        zs_np = om.run(NumpyOps(), bits(xd), bits(yd), strict=False)
        got = tuple(int(np.asarray(p).ravel()[0]) - int(np.asarray(n).ravel()[0])
                    for p, n in zs_np)
        ref = om.multiply(SDNumber(tuple(xd)), SDNumber(tuple(yd))).digits
        assert got == ref

    @given(digits(4), digits(4))
    @settings(max_examples=30, deadline=None)
    def test_wave_final_tick_matches_reference(self, xd, yd):
        om = OnlineMultiplier(4)
        waves = om.wave(
            np.array(xd, dtype=np.int8).reshape(4, 1),
            np.array(yd, dtype=np.int8).reshape(4, 1),
        )
        ref = om.multiply(SDNumber(tuple(xd)), SDNumber(tuple(yd))).digits
        assert tuple(waves[-1][:, 0]) == ref


class TestDigitStreamInvariants:
    @given(digits(8), digits(8))
    @settings(max_examples=60, deadline=None)
    def test_output_digits_valid(self, xd, yd):
        z = OnlineMultiplier(8).multiply(SDNumber(tuple(xd)), SDNumber(tuple(yd)))
        assert all(d in (-1, 0, 1) for d in z.digits)
        assert len(z.digits) == 8

    @given(digits(8))
    @settings(max_examples=40, deadline=None)
    def test_square_nonnegative(self, xd):
        """x * x must be >= -2^-N (the truncation can dip just below 0)."""
        x = SDNumber(tuple(xd))
        z = OnlineMultiplier(8).multiply(x, x)
        assert z.value() >= -Fraction(1, 2**8)
