"""Tests for the digit-parallel online adder (Fig. 2 of the paper)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.online_adder import (
    ONLINE_ADDER_DELAY_FA,
    build_online_adder,
    online_add,
    online_adder_port_values,
)
from repro.netlist.delay import UnitDelay
from repro.netlist.sim import WaveformSimulator, evaluate
from repro.netlist.sta import static_timing
from repro.numrep.signed_digit import SDNumber

digit_list = st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=12)


class TestOnlineAddValueLevel:
    def test_exhaustive_3_digits(self):
        for xd in itertools.product((-1, 0, 1), repeat=3):
            for yd in itertools.product((-1, 0, 1), repeat=3):
                x, y = SDNumber(xd), SDNumber(yd)
                assert online_add(x, y).value() == x.value() + y.value()

    @given(digit_list)
    @settings(max_examples=60, deadline=None)
    def test_additive_identity(self, xd):
        x = SDNumber(tuple(xd))
        zero = SDNumber.zero(len(xd))
        assert online_add(x, zero).value() == x.value()

    @given(digit_list)
    @settings(max_examples=60, deadline=None)
    def test_inverse(self, xd):
        x = SDNumber(tuple(xd))
        assert online_add(x, x.negate()).value() == 0

    @given(digit_list, digit_list)
    @settings(max_examples=60, deadline=None)
    def test_commutative_value(self, xd, yd):
        n = max(len(xd), len(yd))
        x = SDNumber(tuple(xd) + (0,) * (n - len(xd)))
        y = SDNumber(tuple(yd) + (0,) * (n - len(yd)))
        assert online_add(x, y).value() == online_add(y, x).value()


class TestOnlineAdderNetlist:
    def _decode(self, out, ndigits, exp_msd):
        total = 0
        from fractions import Fraction

        for k in range(ndigits + 1):
            d = int(out[f"zp{k}"][0]) - int(out[f"zn{k}"][0])
            total += Fraction(d) * Fraction(2) ** (exp_msd + 1 - k)
        return total

    def test_exhaustive_2_digits(self):
        c = build_online_adder(2)
        for xd in itertools.product((-1, 0, 1), repeat=2):
            for yd in itertools.product((-1, 0, 1), repeat=2):
                x, y = SDNumber(xd), SDNumber(yd)
                ports = online_adder_port_values(x, y)
                out = evaluate(c, {k: [v] for k, v in ports.items()})
                assert self._decode(out, 2, -1) == x.value() + y.value()

    def test_constant_delay_independent_of_width(self):
        """The adder's depth does not grow with the word length — the
        carry-free property that makes it overclocking-immune."""
        d4 = static_timing(build_online_adder(4), UnitDelay()).critical_delay
        d32 = static_timing(build_online_adder(32), UnitDelay()).critical_delay
        assert d4 == d32
        assert d32 <= 2 * ONLINE_ADDER_DELAY_FA  # two FA levels (2 gates each)

    def test_no_timing_violation_when_overclocked_one_level(self):
        """Sampling one quantum early leaves most digit positions settled —
        contrast with the ripple-carry adder whose MSB settles last."""
        n = 16
        c = build_online_adder(n)
        sim = WaveformSimulator(c, UnitDelay())
        rng = np.random.default_rng(1)
        ports = {}
        for prefix in ("x", "y"):
            digits = rng.integers(-1, 2, size=(n, 500))
            for k in range(n):
                ports[f"{prefix}p{k}"] = (digits[k] == 1).astype(np.uint8)
                ports[f"{prefix}n{k}"] = (digits[k] == -1).astype(np.uint8)
        res = sim.run(ports)
        assert res.settle_step <= 4

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_online_adder(0)


class TestOnlineSub:
    @given(digit_list, digit_list)
    @settings(max_examples=40, deadline=None)
    def test_subtraction_value(self, xd, yd):
        from repro.core.online_adder import online_sub

        n = max(len(xd), len(yd))
        x = SDNumber(tuple(xd) + (0,) * (n - len(xd)))
        y = SDNumber(tuple(yd) + (0,) * (n - len(yd)))
        assert online_sub(x, y).value() == x.value() - y.value()

    def test_self_subtraction_is_zero(self):
        from repro.core.online_adder import online_sub

        x = SDNumber((1, -1, 0, 1))
        assert online_sub(x, x).value() == 0
