"""Property tests: random expression trees in both arithmetics.

Hypothesis builds random dataflow graphs respecting the fraction-shaped
multiplier rule, synthesizes them both ways, and compares the settled
gate-level outputs against an exact Fraction-domain evaluation.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.synthesis import Datapath
from repro.netlist.delay import UnitDelay

NDIGITS = 6

# recipe entries: ("add", i, j) | ("mul", i, j) | ("neg", i) | ("const", v)
_op = st.one_of(
    st.tuples(st.just("add"), st.integers(0, 30), st.integers(0, 30)),
    st.tuples(st.just("mul"), st.integers(0, 30), st.integers(0, 30)),
    st.tuples(st.just("neg"), st.integers(0, 30), st.just(0)),
    st.tuples(
        st.just("const"),
        st.integers(-(2**NDIGITS - 1), 2**NDIGITS - 1),
        st.just(0),
    ),
)


def _build(recipe, n_inputs, dp_factory):
    """Build the expression in a Datapath and in exact Fractions."""
    dp = dp_factory()
    xs = [dp.input(f"x{k}") for k in range(n_inputs)]
    x_vals = [Fraction(17 * (k + 1) % 37 - 18, 64) for k in range(n_inputs)]

    # pools of (expr, exact_value, is_fraction_shaped, mul_count)
    pool = [(x, v, True, 0) for x, v in zip(xs, x_vals)]
    for kind, a, b in recipe:
        if kind == "const":
            v = Fraction(a, 2**NDIGITS)
            pool.append((dp.const(v), v, True, 0))
            continue
        ea, va, fa, ma = pool[a % len(pool)]
        if kind == "neg":
            pool.append((-ea, -va, fa, ma))
            continue
        eb, vb, fb, mb = pool[b % len(pool)]
        if kind == "add":
            pool.append((ea + eb, va + vb, False, ma + mb))
        else:  # mul
            if not (fa and fb):
                continue  # respect the fraction-shaped rule
            if ma + mb >= 3:
                continue  # bound truncation-error accumulation
            pool.append((ea * eb, va * vb, True, ma + mb + 1))
    expr, value, _f, muls = pool[-1]
    dp.output("y", expr)
    return dp, value, muls


@settings(max_examples=40, deadline=None)
@given(
    st.lists(_op, min_size=1, max_size=12),
    st.integers(1, 3),
    st.sampled_from(["traditional", "online"]),
)
def test_random_expressions_match_exact_value(recipe, n_inputs, arith):
    dp, exact, muls = _build(recipe, n_inputs, lambda: Datapath(NDIGITS))
    synth = dp.synthesize(arith, UnitDelay())
    inputs = {
        f"x{k}": np.array([float(Fraction(17 * (k + 1) % 37 - 18, 64))])
        for k in range(n_inputs)
    }
    run = synth.apply(inputs)
    got = float(run.correct["y"][0])
    if arith == "traditional":
        assert got == pytest.approx(float(exact), abs=1e-12)
    else:
        # each online product truncates to NDIGITS digits; additions are
        # exact; the error compounds through nested products
        budget = (2.0**-NDIGITS) * (2 ** (muls + 1))
        assert abs(got - float(exact)) <= budget


@settings(max_examples=15, deadline=None)
@given(st.lists(_op, min_size=1, max_size=10), st.integers(1, 2))
def test_both_arithmetics_agree(recipe, n_inputs):
    dp1, _v, muls = _build(recipe, n_inputs, lambda: Datapath(NDIGITS))
    dp2, _v2, _m2 = _build(recipe, n_inputs, lambda: Datapath(NDIGITS))
    inputs = {
        f"x{k}": np.array([float(Fraction(17 * (k + 1) % 37 - 18, 64))])
        for k in range(n_inputs)
    }
    trad = dp1.synthesize("traditional", UnitDelay()).apply(inputs)
    online = dp2.synthesize("online", UnitDelay()).apply(inputs)
    budget = (2.0**-NDIGITS) * (2 ** (muls + 1))
    assert abs(
        float(trad.correct["y"][0]) - float(online.correct["y"][0])
    ) <= budget
