"""Tests for the digit-serial online operators.

The headline property: the serial recurrences produce digit streams that
are *identical* to the unrolled digit-parallel operators — Fig. 3's
"synthesis of Algorithm 1 into a digit-parallel structure" is exact.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.online_adder import online_add
from repro.core.online_multiplier import OnlineMultiplier
from repro.core.serial import (
    OnlineSerialAdder,
    OnlineSerialMultiplier,
    serial_multiply,
)
from repro.numrep.signed_digit import SDNumber

digits8 = st.lists(st.sampled_from([-1, 0, 1]), min_size=8, max_size=8)


class TestSerialAdder:
    def test_exhaustive_3_digits_value(self):
        for xd in itertools.product((-1, 0, 1), repeat=3):
            for yd in itertools.product((-1, 0, 1), repeat=3):
                x, y = SDNumber(xd), SDNumber(yd)
                z = OnlineSerialAdder().add(x, y)
                assert z.value() == x.value() + y.value()

    def test_matches_parallel_digit_stream(self):
        for xd in itertools.product((-1, 0, 1), repeat=4):
            x = SDNumber(xd)
            y = SDNumber((1, 0, -1, 1))
            serial = OnlineSerialAdder().add(x, y)
            parallel = online_add(x, y)
            assert serial.digits == parallel.digits
            assert serial.exp_msd == parallel.exp_msd

    def test_online_delay_is_two(self):
        adder = OnlineSerialAdder()
        assert adder.step(1, 1) is None
        assert adder.step(0, 0) is not None  # first digit after 2 cycles

    def test_width_one(self):
        x, y = SDNumber((1,)), SDNumber((-1,))
        z = OnlineSerialAdder().add(x, y)
        assert z.value() == 0
        assert len(z.digits) == 2

    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            OnlineSerialAdder().add(SDNumber((1,)), SDNumber((1, 0)))

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            OnlineSerialAdder().step(2, 0)

    @given(digits8, digits8)
    @settings(max_examples=60, deadline=None)
    def test_random_matches_parallel(self, xd, yd):
        x, y = SDNumber(tuple(xd)), SDNumber(tuple(yd))
        assert OnlineSerialAdder().add(x, y).digits == online_add(x, y).digits


class TestSerialMultiplier:
    def test_exhaustive_3_digits_matches_parallel(self):
        om = OnlineMultiplier(3)
        for xd in itertools.product((-1, 0, 1), repeat=3):
            for yd in itertools.product((-1, 0, 1), repeat=3):
                x, y = SDNumber(xd), SDNumber(yd)
                assert serial_multiply(x, y).digits == om.multiply(x, y).digits

    @given(digits8, digits8)
    @settings(max_examples=60, deadline=None)
    def test_random_matches_parallel(self, xd, yd):
        x, y = SDNumber(tuple(xd)), SDNumber(tuple(yd))
        parallel = OnlineMultiplier(8).multiply(x, y)
        assert serial_multiply(x, y).digits == parallel.digits

    def test_online_delay(self):
        """No product digit during the first delta cycles; one per cycle
        afterwards (Fig. 1's dataflow)."""
        m = OnlineSerialMultiplier(8)
        x = SDNumber((1, 0, -1, 0, 1, 1, 0, -1))
        y = SDNumber((0, 1, 1, -1, 0, 1, -1, 0))
        emitted = []
        for cycle, (xd, yd) in enumerate(zip(x.digits, y.digits), start=1):
            z = m.step(xd, yd)
            emitted.append(z is not None)
        # delta + 1 = 4th cycle produces the first digit
        assert emitted == [False] * 3 + [True] * 5
        assert len(m.flush()) == 3

    def test_cycles_total(self):
        assert OnlineSerialMultiplier(8).cycles_total == 11

    def test_overfeed_rejected(self):
        m = OnlineSerialMultiplier(1)
        m.step(1, 1)
        with pytest.raises(RuntimeError):
            m.step(0, 0)

    def test_flush_before_feeding_rejected(self):
        m = OnlineSerialMultiplier(4)
        m.step(1, 0)
        with pytest.raises(RuntimeError):
            m.flush()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            serial_multiply(SDNumber((1,)), SDNumber((1, 0)))
