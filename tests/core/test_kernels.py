"""Unit and property tests for the borrow-save kernels."""

import itertools
from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernels import (
    ResidualOverflowError,
    bs_add,
    bs_add3,
    bs_negate,
    bs_shift,
    bs_value,
    bs_zero,
    lut_tree,
    om_stage,
    sdvm,
)
from repro.core.ops import IntOps

digit_list = st.lists(st.sampled_from([-1, 0, 1]), min_size=1, max_size=10)


def _vec(digits, start_pos=1):
    return {
        start_pos + k: (1 if d == 1 else 0, 1 if d == -1 else 0)
        for k, d in enumerate(digits)
    }


def _value(digits, start_pos=1):
    return sum(
        Fraction(d, 2 ** (start_pos + k)) for k, d in enumerate(digits)
    )


class TestBsValue:
    def test_empty(self):
        assert bs_value(bs_zero()) == 0

    def test_weights(self):
        vec = {0: (1, 0), 2: (0, 1)}
        assert bs_value(vec) == 1 - Fraction(1, 4)

    def test_redundant_pair(self):
        assert bs_value({1: (1, 1)}) == 0


class TestBsAdd:
    @given(digit_list, digit_list)
    @settings(max_examples=100, deadline=None)
    def test_value_preserved(self, xd, yd):
        ops = IntOps()
        z = bs_add(ops, _vec(xd), _vec(yd))
        assert bs_value(z) == _value(xd) + _value(yd)

    def test_exhaustive_3_digits(self):
        ops = IntOps()
        for xd in itertools.product((-1, 0, 1), repeat=3):
            for yd in itertools.product((-1, 0, 1), repeat=3):
                z = bs_add(ops, _vec(xd), _vec(yd))
                assert bs_value(z) == _value(xd) + _value(yd)

    def test_redundant_input_pairs(self):
        """(1,1) digit pairs (non-canonical zeros) are handled."""
        ops = IntOps()
        x = {1: (1, 1), 2: (1, 0)}
        y = {1: (0, 1), 2: (1, 1)}
        z = bs_add(ops, x, y)
        assert bs_value(z) == bs_value(x) + bs_value(y)

    def test_misaligned_ranges(self):
        ops = IntOps()
        x = _vec([1, -1], start_pos=0)
        y = _vec([1], start_pos=4)
        z = bs_add(ops, x, y)
        assert bs_value(z) == bs_value(x) + bs_value(y)

    def test_output_extends_one_msd(self):
        ops = IntOps()
        z = bs_add(ops, _vec([1]), _vec([1]))
        assert min(z) == 0  # 1/2 + 1/2 = 1 needs position 0

    def test_empty_operands(self):
        ops = IntOps()
        assert bs_add(ops, {}, {}) == {}

    def test_three_operand(self):
        ops = IntOps()
        vecs = [_vec([1, 0, -1]), _vec([0, 1, 1]), _vec([-1, -1, 0])]
        z = bs_add3(ops, *vecs)
        assert bs_value(z) == sum(bs_value(v) for v in vecs)


class TestSdvm:
    @given(st.sampled_from([-1, 0, 1]), digit_list)
    @settings(max_examples=60, deadline=None)
    def test_digit_times_vector(self, d, xd):
        ops = IntOps()
        digit = (1 if d == 1 else 0, 1 if d == -1 else 0)
        out = sdvm(ops, digit, _vec(xd))
        assert bs_value(out) == d * _value(xd)

    def test_noncanonical_zero_digit(self):
        ops = IntOps()
        out = sdvm(ops, (1, 1), _vec([1, -1, 1]))
        assert bs_value(out) == 0


class TestShiftNegate:
    @given(digit_list, st.integers(-3, 3))
    @settings(max_examples=40, deadline=None)
    def test_shift_scales(self, xd, k):
        vec = _vec(xd)
        assert bs_value(bs_shift(vec, k)) == _value(xd) * Fraction(2) ** k

    @given(digit_list)
    @settings(max_examples=40, deadline=None)
    def test_negate(self, xd):
        vec = _vec(xd)
        assert bs_value(bs_negate(vec)) == -_value(xd)


class TestLutTree:
    @pytest.mark.parametrize("nbits", [1, 3, 6, 7, 8, 9])
    def test_matches_table(self, nbits):
        import random

        rng = random.Random(nbits)
        table = [rng.randint(0, 1) for _ in range(2**nbits)]
        ops = IntOps()
        for _ in range(50):
            bits = [rng.randint(0, 1) for _ in range(nbits)]
            idx = sum(b << i for i, b in enumerate(bits))
            assert lut_tree(ops, table, bits) == table[idx]

    def test_table_size_check(self):
        with pytest.raises(ValueError):
            lut_tree(IntOps(), [0, 1], [0, 0])


class TestOmStage:
    def test_empty_everything(self):
        z, p_next = om_stage(IntOps(), {}, {}, emit_z=False)
        assert z is None and p_next == {}

    def test_first_stage_shifts_h(self):
        ops = IntOps()
        h = _vec([1], start_pos=4)
        z, p_next = om_stage(ops, {}, h, emit_z=False)
        assert z is None
        assert bs_value(p_next) == 2 * bs_value(h)

    def test_value_recurrence_no_z(self):
        """P' = 2 * (P + H) when z is suppressed and the estimate is small."""
        ops = IntOps()
        p = _vec([0, 0, 1], start_pos=0)  # 1/4
        h = _vec([1, -1], start_pos=3)  # 1/8 - 1/16
        _z, p_next = om_stage(ops, p, h, emit_z=False)
        assert bs_value(p_next) == 2 * (bs_value(p) + bs_value(h))

    def test_value_recurrence_with_z(self):
        ops = IntOps()
        p = _vec([1, 1, 0], start_pos=0)  # 1.5
        h = _vec([1], start_pos=3)  # 1/8
        z, p_next = om_stage(ops, p, h, emit_z=True)
        zval = int(z[0]) - int(z[1])
        assert zval == 1  # W = 1.625 -> z = 1
        assert bs_value(p_next) == 2 * (bs_value(p) + bs_value(h) - zval)

    def test_h_above_boundary_rejected(self):
        with pytest.raises(ValueError):
            om_stage(IntOps(), _vec([1], 0), _vec([1], 2), emit_z=True)

    def test_p_above_zero_rejected(self):
        with pytest.raises(ValueError):
            om_stage(IntOps(), _vec([1], -1), {}, emit_z=True)

    def test_residual_overflow_detected(self):
        """An impossible (unreachable) P pattern trips the strict check."""
        ops = IntOps()
        p = {0: (1, 0), 1: (1, 0), 2: (1, 0)}  # V = 1.75, fine with z
        _z, _p = om_stage(ops, p, {}, emit_z=True)  # no raise
        with pytest.raises(ResidualOverflowError):
            om_stage(ops, p, {}, emit_z=False)  # no z to absorb 1.75

    def test_late_stage_tail_passthrough(self):
        ops = IntOps()
        p = _vec([1, 0, -1, 1, 0, 1], start_pos=0)
        _z, p_next = om_stage(ops, p, {}, emit_z=True)
        # tail digits shift by one position unchanged
        assert p_next[2] == p[3]
        assert p_next[4] == p[5]
