"""Unit tests for the logic-operation providers."""

import itertools

import numpy as np
import pytest

from repro.core.ops import IntOps, NetOps, NumpyOps
from repro.netlist.gates import Circuit
from repro.netlist.sim import evaluate


class TestIntOps:
    def setup_method(self):
        self.ops = IntOps()

    def test_const(self):
        assert self.ops.const(0) == 0
        assert self.ops.const(1) == 1
        with pytest.raises(ValueError):
            self.ops.const(2)

    def test_not(self):
        assert self.ops.not_(0) == 1
        assert self.ops.not_(1) == 0

    def test_xor3_maj3_truth(self):
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert self.ops.xor3(a, b, c) == (a + b + c) % 2
            assert self.ops.maj3(a, b, c) == (1 if a + b + c >= 2 else 0)

    def test_and_or(self):
        assert self.ops.and2(1, 1) == 1
        assert self.ops.and2(1, 0) == 0
        assert self.ops.or2(0, 0) == 0
        assert self.ops.or2(0, 1) == 1

    def test_lut(self):
        table = [0, 1, 1, 0]  # XOR of two bits
        for a, b in itertools.product((0, 1), repeat=2):
            assert self.ops.lut(table, (a, b)) == a ^ b

    def test_checks_residual(self):
        assert IntOps.checks_residual
        assert not NumpyOps.checks_residual


class TestNumpyOps:
    def setup_method(self):
        self.ops = NumpyOps()

    def test_elementwise_matches_int(self):
        iops = IntOps()
        a = np.array([0, 1, 0, 1], dtype=np.uint8)
        b = np.array([0, 0, 1, 1], dtype=np.uint8)
        c = np.array([1, 0, 1, 0], dtype=np.uint8)
        for k in range(4):
            assert self.ops.xor3(a, b, c)[k] == iops.xor3(
                int(a[k]), int(b[k]), int(c[k])
            )
            assert self.ops.maj3(a, b, c)[k] == iops.maj3(
                int(a[k]), int(b[k]), int(c[k])
            )

    def test_lut_vectorized(self):
        table = [0, 0, 0, 1]  # AND
        a = np.array([0, 1, 0, 1], dtype=np.uint8)
        b = np.array([0, 0, 1, 1], dtype=np.uint8)
        assert self.ops.lut(table, (a, b)).tolist() == [0, 0, 0, 1]

    def test_lut_with_const_bits(self):
        table = [0, 1, 1, 0]
        a = np.array([0, 1], dtype=np.uint8)
        out = self.ops.lut(table, (a, 1))  # b tied to 1
        assert out.tolist() == [1, 0]

    def test_lut_all_const(self):
        assert self.ops.lut([0, 1], (1,)) == 1


class TestNetOps:
    def test_matches_intops_on_random_functions(self):
        """Build the same expressions in both domains and compare."""
        import random

        rng = random.Random(4)
        for _ in range(20):
            circ = Circuit()
            nops = NetOps(circ)
            iops = IntOps()
            in_bits = [rng.randint(0, 1) for _ in range(4)]
            nets = [circ.input(f"i{k}") for k in range(4)]

            def build(ops, bits):
                t1 = ops.xor3(bits[0], bits[1], ops.const(0))
                t2 = ops.maj3(bits[2], ops.const(1), bits[3])
                t3 = ops.and2(t1, t2)
                t4 = ops.or2(t3, ops.not_(bits[0]))
                return ops.lut([0, 1, 1, 1], (t4, bits[1]))

            expect = build(iops, in_bits)
            out_net = build(nops, nets)
            circ.output("y", out_net)
            got = evaluate(
                circ, {f"i{k}": [in_bits[k]] for k in range(4)}
            )["y"][0]
            assert int(got) == expect

    def test_constant_folding_produces_no_gates(self):
        circ = Circuit()
        ops = NetOps(circ)
        zero, one = ops.const(0), ops.const(1)
        assert ops.and2(zero, one) == zero
        assert ops.or2(zero, one) == one
        assert ops.xor3(zero, zero, zero) == zero
        assert ops.maj3(one, one, zero) == one
        # only the two constant tie-off gates exist
        assert all(g.op in ("CONST0", "CONST1") for g in circ.gates)

    def test_lut_folds_constant_inputs(self):
        circ = Circuit()
        ops = NetOps(circ)
        a = circ.input("a")
        # 2-input XOR with b tied to 1 collapses to NOT a
        out = ops.lut([0, 1, 1, 0], (a, ops.const(1)))
        circ.output("y", out)
        got = evaluate(circ, {"a": [0, 1]})["y"]
        assert got.tolist() == [1, 0]
