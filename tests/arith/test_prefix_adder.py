"""Unit tests for the Kogge-Stone parallel-prefix adder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.prefix_adder import build_kogge_stone_adder, kogge_stone_adder
from repro.arith.ripple_carry import build_ripple_carry_adder
from repro.netlist.delay import UnitDelay
from repro.netlist.gates import Circuit
from repro.netlist.sim import evaluate
from repro.netlist.sta import static_timing


def _inputs(width, avals, bvals):
    a, b = np.asarray(avals), np.asarray(bvals)
    ins = {}
    for i in range(width):
        ins[f"a{i}"] = (a >> i) & 1
        ins[f"b{i}"] = (b >> i) & 1
    return ins


def _total(out, width):
    s = sum(out[f"s{i}"].astype(np.int64) << i for i in range(width))
    return s + (out["cout"].astype(np.int64) << width)


class TestKoggeStone:
    @pytest.mark.parametrize("width", [1, 2, 3, 4, 6])
    def test_exhaustive(self, width):
        c = build_kogge_stone_adder(width)
        n = 1 << width
        a, b = np.meshgrid(np.arange(n), np.arange(n))
        a, b = a.ravel(), b.ravel()
        out = evaluate(c, _inputs(width, a, b))
        assert np.array_equal(_total(out, width), a + b)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_random_16bit(self, av, bv):
        c = build_kogge_stone_adder(16)
        out = evaluate(c, _inputs(16, [av], [bv]))
        assert _total(out, 16)[0] == av + bv

    def test_carry_in(self):
        c = Circuit()
        a = c.inputs(4, "a")
        b = c.inputs(4, "b")
        cin = c.input("cin")
        s, cout = kogge_stone_adder(c, a, b, cin)
        for i, net in enumerate(s):
            c.output(f"s{i}", net)
        c.output("cout", cout)
        av, bv = np.meshgrid(np.arange(16), np.arange(16))
        av, bv = av.ravel(), bv.ravel()
        for cv in (0, 1):
            ins = _inputs(4, av, bv)
            ins["cin"] = np.full(av.shape, cv, dtype=np.uint8)
            out = evaluate(c, ins)
            assert np.array_equal(_total(out, 4), av + bv + cv)

    def test_log_depth(self):
        """Prefix depth grows logarithmically, ripple linearly."""
        ks16 = static_timing(build_kogge_stone_adder(16), UnitDelay())
        ks32 = static_timing(build_kogge_stone_adder(32), UnitDelay())
        rc32 = static_timing(build_ripple_carry_adder(32), UnitDelay())
        assert ks32.critical_delay <= ks16.critical_delay + 2
        assert ks32.critical_delay < rc32.critical_delay / 2

    def test_width_mismatch(self):
        c = Circuit()
        with pytest.raises(ValueError):
            kogge_stone_adder(c, c.inputs(2), c.inputs(3))

    def test_invalid_final_adder_choice(self):
        from repro.arith.array_multiplier import array_multiplier

        c = Circuit()
        with pytest.raises(ValueError):
            array_multiplier(c, c.inputs(2), c.inputs(2, "b"), final_adder="magic")
