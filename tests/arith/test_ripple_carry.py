"""Unit tests for the ripple-carry adder and two's-complement negation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.ripple_carry import (
    build_ripple_carry_adder,
    ripple_carry_adder,
    twos_complement_negate,
)
from repro.netlist.delay import UnitDelay
from repro.netlist.gates import Circuit
from repro.netlist.sim import evaluate
from repro.netlist.sta import static_timing


def _adder_inputs(width, avals, bvals):
    ins = {}
    for i in range(width):
        ins[f"a{i}"] = (np.asarray(avals) >> i) & 1
        ins[f"b{i}"] = (np.asarray(bvals) >> i) & 1
    return ins


class TestRippleCarryAdder:
    def test_exhaustive_4bit(self):
        c = build_ripple_carry_adder(4)
        a, b = np.meshgrid(np.arange(16), np.arange(16))
        a, b = a.ravel(), b.ravel()
        out = evaluate(c, _adder_inputs(4, a, b))
        total = sum(out[f"s{i}"].astype(int) << i for i in range(4))
        total += out["cout"].astype(int) << 4
        assert np.array_equal(total, a + b)

    def test_carry_chain_dominates_timing(self):
        # the critical path grows linearly with width (MSB settles last)
        d4 = static_timing(build_ripple_carry_adder(4), UnitDelay())
        d8 = static_timing(build_ripple_carry_adder(8), UnitDelay())
        assert d8.critical_delay > d4.critical_delay

    def test_cin(self):
        c = Circuit()
        a = c.inputs(3, "a")
        b = c.inputs(3, "b")
        cin = c.input("cin")
        s, cout = ripple_carry_adder(c, a, b, cin)
        for i, net in enumerate(s):
            c.output(f"s{i}", net)
        c.output("cout", cout)
        ins = {"a0": 1, "a1": 1, "a2": 1, "b0": 0, "b1": 0, "b2": 0, "cin": 1}
        out = evaluate(c, ins)
        total = sum(int(out[f"s{i}"][0]) << i for i in range(3))
        total += int(out["cout"][0]) << 3
        assert total == 8  # 7 + 0 + 1

    def test_width_mismatch(self):
        c = Circuit()
        with pytest.raises(ValueError):
            ripple_carry_adder(c, c.inputs(2), c.inputs(3))

    def test_zero_width(self):
        c = Circuit()
        with pytest.raises(ValueError):
            ripple_carry_adder(c, [], [])

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**12 - 1), st.integers(0, 2**12 - 1))
    def test_random_12bit(self, av, bv):
        c = build_ripple_carry_adder(12)
        out = evaluate(c, _adder_inputs(12, [av], [bv]))
        total = sum(int(out[f"s{i}"][0]) << i for i in range(12))
        total += int(out["cout"][0]) << 12
        assert total == av + bv


class TestNegate:
    def test_exhaustive_4bit(self):
        c = Circuit()
        bits = c.inputs(4, "x")
        out_bits = twos_complement_negate(c, bits)
        for i, net in enumerate(out_bits):
            c.output(f"y{i}", net)
        values = np.arange(16)
        ins = {f"x{i}": (values >> i) & 1 for i in range(4)}
        out = evaluate(c, ins)
        raw = sum(out[f"y{i}"].astype(int) << i for i in range(4))
        assert np.array_equal(raw, (-values) % 16)
