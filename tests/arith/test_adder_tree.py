"""Unit tests for multi-operand summation and column compression."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.adder_tree import adder_tree, build_adder_tree
from repro.arith.compress import columns_from_rows, reduce_columns
from repro.netlist.gates import Circuit
from repro.netlist.sim import evaluate


def _tree_inputs(num, width, values):
    ins = {}
    for k in range(num):
        v = np.asarray(values[k]) % (1 << width)
        for i in range(width):
            ins[f"x{k}_{i}"] = (v >> i) & 1
    return ins


def _decode(out, width):
    raw = sum(out[f"s{i}"].astype(np.int64) << i for i in range(width))
    sign = raw >= (1 << (width - 1))
    return raw - (sign.astype(np.int64) << width)


class TestAdderTree:
    @pytest.mark.parametrize("final_adder", ["kogge_stone", "ripple"])
    def test_three_operand_exhaustive_small(self, final_adder):
        width, out_width = 3, 6
        c = Circuit()
        ops = [c.inputs(width, f"x{k}_") for k in range(3)]
        total = adder_tree(c, ops, out_width, final_adder=final_adder)
        for i, net in enumerate(total):
            c.output(f"s{i}", net)
        vals = np.arange(-4, 4)
        a, b, d = np.meshgrid(vals, vals, vals)
        a, b, d = a.ravel(), b.ravel(), d.ravel()
        out = evaluate(c, _tree_inputs(3, width, [a, b, d]))
        assert np.array_equal(_decode(out, out_width), a + b + d)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-128, 127), min_size=9, max_size=9))
    def test_nine_operands(self, values):
        c = build_adder_tree(9, 8, 13)
        ins = _tree_inputs(9, 8, [[v] for v in values])
        out = evaluate(c, ins)
        assert _decode(out, 13)[0] == sum(values)

    def test_single_operand_passthrough(self):
        c = Circuit()
        bits = c.inputs(4, "x0_")
        total = adder_tree(c, [bits], 6)
        assert len(total) == 6

    def test_empty_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            adder_tree(c, [], 4)

    def test_sign_extension_to_smaller_rejected(self):
        c = Circuit()
        bits = c.inputs(8, "x0_")
        with pytest.raises(ValueError):
            adder_tree(c, [bits], 4)


class TestCompress:
    def test_columns_from_rows_weights(self):
        c = Circuit()
        r0 = c.inputs(2, "a")
        r1 = c.inputs(2, "b")
        cols = columns_from_rows([r0, r1], [0, 2])
        assert sorted(cols) == [0, 1, 2, 3]
        assert cols[2] == [r1[0]]

    def test_columns_rows_weights_mismatch(self):
        with pytest.raises(ValueError):
            columns_from_rows([[1]], [0, 1])

    def test_reduce_to_two_rows(self):
        c = Circuit()
        nets = c.inputs(5, "x")
        cols = {0: list(nets)}
        row_a, row_b = reduce_columns(c, cols, 4)
        assert len(row_a) == 4 and len(row_b) == 4
        # functional check: sum of 5 bits in column 0
        for i, net in enumerate(row_a):
            c.output(f"a{i}", net)
        for i, net in enumerate(row_b):
            c.output(f"b{i}", net)
        vals = np.arange(32)
        ins = {f"x{i}": (vals >> i) & 1 for i in range(5)}
        out = evaluate(c, ins)
        total = sum(
            (out[f"a{i}"].astype(int) + out[f"b{i}"].astype(int)) << i
            for i in range(4)
        )
        expect = sum((vals >> i) & 1 for i in range(5))
        assert np.array_equal(total, expect)

    def test_truncates_beyond_out_width(self):
        c = Circuit()
        nets = c.inputs(3, "x")
        cols = {1: list(nets)}
        row_a, row_b = reduce_columns(c, cols, 2)
        assert len(row_a) == 2
