"""Unit tests for the Baugh-Wooley signed array multiplier."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arith.array_multiplier import build_array_multiplier
from repro.netlist.delay import UnitDelay
from repro.netlist.sim import WaveformSimulator, evaluate
from repro.netlist.sta import static_timing


def _mult_inputs(width, avals, bvals):
    a = np.asarray(avals) % (1 << width)
    b = np.asarray(bvals) % (1 << width)
    ins = {}
    for i in range(width):
        ins[f"a{i}"] = (a >> i) & 1
        ins[f"b{i}"] = (b >> i) & 1
    return ins


def _decode(out, width):
    raw = sum(out[f"p{i}"].astype(np.int64) << i for i in range(2 * width))
    sign = raw >= (1 << (2 * width - 1))
    return raw - (sign.astype(np.int64) << (2 * width))


class TestArrayMultiplier:
    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_exhaustive(self, width):
        c = build_array_multiplier(width)
        lo, hi = -(1 << (width - 1)), 1 << (width - 1)
        a, b = np.meshgrid(np.arange(lo, hi), np.arange(lo, hi))
        a, b = a.ravel(), b.ravel()
        out = evaluate(c, _mult_inputs(width, a, b))
        assert np.array_equal(_decode(out, width), a * b)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(-128, 127), st.integers(-128, 127))
    def test_random_8bit(self, av, bv):
        c = build_array_multiplier(8)
        out = evaluate(c, _mult_inputs(8, [av], [bv]))
        assert _decode(out, 8)[0] == av * bv

    def test_msb_settles_late(self):
        """Overclocking corrupts the most significant product bits first."""
        width = 6
        c = build_array_multiplier(width)
        sim = WaveformSimulator(c, UnitDelay())
        rng = np.random.default_rng(0)
        vals_a = rng.integers(-(1 << 5), 1 << 5, 500)
        vals_b = rng.integers(-(1 << 5), 1 << 5, 500)
        res = sim.run(_mult_inputs(width, vals_a, vals_b))
        final = res.final()
        # sample shortly before settle: only upper bits may differ
        early = res.sample(res.settle_step - 2)
        lower_diff = sum(
            int((early[f"p{i}"] != final[f"p{i}"]).sum()) for i in range(4)
        )
        upper_diff = sum(
            int((early[f"p{i}"] != final[f"p{i}"]).sum())
            for i in range(4, 12)
        )
        assert upper_diff > 0
        assert lower_diff == 0

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            build_array_multiplier(0)

    def test_critical_path_scales(self):
        d4 = static_timing(build_array_multiplier(4), UnitDelay())
        d8 = static_timing(build_array_multiplier(8), UnitDelay())
        assert d8.critical_delay > d4.critical_delay
