"""Boundary tests for the exact timing-ratio helpers.

The ``b = ceil(T_S / mu)`` computations were historically performed in
binary floating point, which is off by one whenever the exact product or
quotient is an integer but the float lands epsilon off it.  These tests
pin the concrete sites that misrounded (and the helpers that fixed
them); the end-to-end counterparts live in ``tests/model`` /
``tests/faults`` / ``tests/sim``.
"""

import math
from fractions import Fraction

from repro.numrep.rounding import ceil_scaled, floor_ratio


class TestCeilScaled:
    def test_exact_multiple_regression(self):
        # the original faulty computation: 0.28 * 25 = 7.000000000000001
        assert math.ceil(0.28 * 25) == 8  # the bug, preserved for context
        assert ceil_scaled(0.28, 25) == 7

    def test_round_trip_every_depth(self):
        # ceil((k/n) * n) must recover k for every depth of every grid
        for n in range(1, 64):
            for k in range(1, n + 1):
                assert ceil_scaled(k / n, n) == k

    def test_non_multiples_still_ceil(self):
        assert ceil_scaled(0.55, 10) == 6
        assert ceil_scaled(0.501, 10) == 6
        assert ceil_scaled(0.05, 10) == 1

    def test_exact_types_pass_through(self):
        assert ceil_scaled(Fraction(7, 25), 25) == 7
        assert ceil_scaled(1, 25) == 25
        assert ceil_scaled(0, 25) == 0


class TestFloorRatio:
    def test_exact_quotient_regression(self):
        # the original faulty computation: 33 / 1.1 = 29.999999999999996
        assert int(33 / 1.1) == 29  # the bug, preserved for context
        assert floor_ratio(33, 1.1) == 30
        assert floor_ratio(55, 1.1) == 50

    def test_matches_exact_rational_floor(self):
        for cents in range(1, 40):
            factor = 1 + cents / 100.0
            rational = Fraction(100 + cents, 100)
            for step in range(1, 120):
                assert floor_ratio(step, factor) == math.floor(
                    Fraction(step) / rational
                )

    def test_plain_floor_cases(self):
        assert floor_ratio(30, 1.25) == 24
        assert floor_ratio(31, 1.25) == 24
        assert floor_ratio(29, 1.0) == 29

    def test_exact_types_pass_through(self):
        assert floor_ratio(33, Fraction(11, 10)) == 30
        assert floor_ratio(33, 3) == 11
