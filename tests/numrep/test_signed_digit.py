"""Unit and property tests for signed-digit numbers."""

import random
from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.numrep.signed_digit import (
    SDNumber,
    borrow_save_decode,
    borrow_save_encode,
    sd_canonical,
    sd_from_twos_complement,
    sd_random,
    sd_value,
)

digits_strategy = st.lists(
    st.sampled_from([-1, 0, 1]), min_size=1, max_size=16
)


class TestSDNumber:
    def test_value_paper_convention(self):
        # x = sum x_i 2^-i with digits at positions 1..N
        x = SDNumber((1, 0, -1))  # 1/2 - 1/8
        assert x.value() == Fraction(3, 8)

    def test_invalid_digit(self):
        with pytest.raises(ValueError):
            SDNumber((2, 0))

    def test_digit_at(self):
        x = SDNumber((1, -1), exp_msd=-1)
        assert x.digit_at(-1) == 1
        assert x.digit_at(-2) == -1
        assert x.digit_at(0) == 0
        assert x.digit_at(-5) == 0

    def test_shift(self):
        x = SDNumber((1,), exp_msd=-1)
        assert x.shift(1).value() == 1
        assert x.shift(-2).value() == Fraction(1, 8)

    def test_negate(self):
        x = SDNumber((1, 0, -1))
        assert x.negate().value() == -x.value()

    def test_append_prepend(self):
        x = SDNumber((1,))
        assert x.append(-1).value() == Fraction(1, 2) - Fraction(1, 4)
        assert x.prepend(1).value() == 1 + Fraction(1, 2)

    def test_truncate(self):
        x = SDNumber((1, -1, 1, 0))
        assert x.truncate(2).digits == (1, -1)

    def test_pad_to(self):
        x = SDNumber((1,), exp_msd=-1)
        padded = x.pad_to(0, -3)
        assert padded.digits == (0, 1, 0, 0)
        assert padded.value() == x.value()

    def test_pad_to_cannot_drop(self):
        with pytest.raises(ValueError):
            SDNumber((1, 1)).pad_to(-1, -1)

    def test_scaled_int(self):
        x = SDNumber((1, 0, -1))
        assert x.scaled_int() == 3  # 3/8 * 8

    @given(digits_strategy)
    def test_redundancy_value_formula(self, digits):
        x = SDNumber(tuple(digits))
        expect = sum(
            Fraction(d, 2 ** (i + 1)) for i, d in enumerate(digits)
        )
        assert x.value() == expect


class TestConversions:
    def test_from_twos_complement_positive(self):
        # 0b0101 with 3 frac bits = 5/8
        x = sd_from_twos_complement(0b0101, 4, 3)
        assert x.value() == Fraction(5, 8)

    def test_from_twos_complement_negative(self):
        # 0b1011 (= -5) with 3 frac bits = -5/8
        x = sd_from_twos_complement(0b1011, 4, 3)
        assert x.value() == Fraction(-5, 8)

    def test_from_twos_complement_exhaustive_width5(self):
        for raw in range(32):
            x = sd_from_twos_complement(raw, 5, 4)
            signed = raw - 32 if raw >= 16 else raw
            assert x.value() == Fraction(signed, 16)

    def test_sd_value_helper(self):
        assert sd_value([1, -1]) == Fraction(1, 4)


class TestCanonical:
    @given(digits_strategy)
    def test_canonical_preserves_value(self, digits):
        x = SDNumber(tuple(digits))
        assert sd_canonical(x).value() == x.value()

    @given(digits_strategy)
    def test_canonical_is_nonadjacent(self, digits):
        c = sd_canonical(SDNumber(tuple(digits)))
        for a, b in zip(c.digits, c.digits[1:]):
            assert not (a != 0 and b != 0)

    def test_example(self):
        # 0.111 -> 1.00-1
        c = sd_canonical(SDNumber((1, 1, 1)))
        assert c.value() == Fraction(7, 8)


class TestBorrowSave:
    @given(digits_strategy)
    def test_encode_decode_roundtrip(self, digits):
        x = SDNumber(tuple(digits))
        pos, neg = borrow_save_encode(x)
        assert borrow_save_decode(pos, neg, x.exp_msd) == x

    def test_noncanonical_pair_decodes_to_zero(self):
        x = borrow_save_decode([1, 0], [1, 0])
        assert x.digits == (0, 0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            borrow_save_decode([1], [0, 0])


class TestRandom:
    def test_deterministic_with_seed(self):
        a = sd_random(10, random.Random(1))
        b = sd_random(10, random.Random(1))
        assert a == b

    def test_digits_in_set(self):
        x = sd_random(100, random.Random(2))
        assert set(x.digits) <= {-1, 0, 1}


class TestTwosComplementRoundTrip:
    """Property-based SD <-> two's-complement round trips.

    Every raw word must survive ``sd_from_twos_complement`` followed by
    ``sd_to_twos_complement`` bit-for-bit — including the most negative
    word, whose magnitude has no positive counterpart — and every
    (redundant, possibly non-canonical) signed-digit string must survive
    the opposite direction value-for-value.
    """

    @given(st.integers(2, 14), st.data())
    def test_raw_survives_both_directions(self, width, data):
        from repro.core.conversion import sd_to_twos_complement

        raw = data.draw(st.integers(0, 2**width - 1))
        sd = sd_from_twos_complement(raw, width, frac_bits=width - 1)
        assert sd_to_twos_complement(sd, width) == raw

    @given(st.integers(2, 14))
    def test_boundary_words(self, width):
        from repro.core.conversion import sd_to_twos_complement

        frac = width - 1
        for raw in (0, 1, 2**frac - 1, 2**frac, 2**width - 1):
            sd = sd_from_twos_complement(raw, width, frac_bits=frac)
            assert sd_to_twos_complement(sd, width) == raw
        most_negative = sd_from_twos_complement(2**frac, width, frac_bits=frac)
        assert most_negative.value() == -1

    @given(digits_strategy)
    def test_redundant_digits_survive_value_for_value(self, digits):
        from repro.core.conversion import sd_to_twos_complement

        number = SDNumber(tuple(digits))  # fraction, exp_msd == -1
        width = len(digits) + 1
        raw = sd_to_twos_complement(number, width)
        back = sd_from_twos_complement(raw, width, frac_bits=width - 1)
        assert back.value() == number.value()

    @given(digits_strategy)
    def test_canonicalisation_is_invisible_in_the_encoding(self, digits):
        from repro.core.conversion import sd_to_twos_complement

        number = SDNumber(tuple(digits))
        width = len(digits) + 2  # canonical form may carry one position up
        canon = sd_canonical(number)
        assert canon.value() == number.value()
        assert sd_to_twos_complement(canon, width) == sd_to_twos_complement(
            number, width
        )
