"""Property tests: the exact-rounding primitives vs Fraction ground truth.

``ceil_scaled`` / ``floor_ratio`` exist because binary floating point
lands epsilon on the wrong side of exact products and quotients
(``math.ceil(0.28 * 25) == 8``).  These properties lock in the contract
over random numerators/denominators/scales: whenever the float argument
*reads* as a small rational ``num/den``, the result equals the exact
integer ceiling/floor computed on :class:`fractions.Fraction`.

The strategy bounds guarantee recovery is well-posed: for ``|num| <= 1e6``
and ``den <= 1e4``, the double nearest ``num/den`` is strictly closer to
``num/den`` than to any other rational with denominator up to the
``limit_denominator(10**9)`` search bound, so the reconstruction in
:mod:`repro.numrep.rounding` is exact, not merely likely.
"""

import math
from fractions import Fraction

from hypothesis import given, strategies as st

from repro.numrep.rounding import ceil_scaled, floor_ratio

numerators = st.integers(-(10**6), 10**6)
denominators = st.integers(1, 10**4)
scales = st.integers(0, 10**4)


class TestCeilScaled:
    @given(num=numerators, den=denominators, units=scales)
    def test_matches_fraction_ground_truth(self, num, den, units):
        value = num / den  # the float reading of the rational
        expect = math.ceil(Fraction(num, den) * units)
        assert ceil_scaled(value, units) == expect

    @given(num=numerators, den=denominators, units=scales)
    def test_exact_fraction_passthrough(self, num, den, units):
        frac = Fraction(num, den)
        assert ceil_scaled(frac, units) == math.ceil(frac * units)

    @given(num=numerators, units=scales)
    def test_integer_inputs_are_exact_products(self, num, units):
        assert ceil_scaled(num, units) == num * units

    def test_regression_epsilon_above_integer(self):
        # 0.28 * 25 == 7.000000000000001 in binary; the exact product is 7
        assert math.ceil(0.28 * 25) == 8
        assert ceil_scaled(0.28, 25) == 7


class TestFloorRatio:
    @given(value=numerators, num=st.integers(1, 10**4), den=denominators)
    def test_matches_fraction_ground_truth(self, value, num, den):
        divisor = num / den
        expect = math.floor(Fraction(value) / Fraction(num, den))
        assert floor_ratio(value, divisor) == expect

    @given(value=numerators, num=st.integers(1, 10**4), den=denominators)
    def test_exact_fraction_passthrough(self, value, num, den):
        frac = Fraction(num, den)
        assert floor_ratio(value, frac) == math.floor(Fraction(value) / frac)

    @given(value=numerators, divisor=st.integers(1, 10**6))
    def test_integer_divisor_is_floor_division(self, value, divisor):
        assert floor_ratio(value, divisor) == value // divisor

    def test_regression_epsilon_below_quotient(self):
        # 33 / 1.1 == 29.999... in binary; the exact quotient is 30
        assert int(33 / 1.1) == 29
        assert floor_ratio(33, 1.1) == 30


class TestRoundTrip:
    @given(num=st.integers(1, 10**4), den=denominators)
    def test_ceil_floor_bracket_the_rational(self, num, den):
        """floor(q) <= q <= ceil(q) with equality iff q is an integer."""
        lo = floor_ratio(num, den)
        hi = ceil_scaled(num / den, 1)
        q = Fraction(num, den)
        assert lo <= q <= hi
        assert (lo == hi) == (q.denominator == 1)
