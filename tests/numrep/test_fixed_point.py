"""Unit tests for the two's-complement fixed-point codec."""

from fractions import Fraction

import pytest

from repro.numrep.fixed_point import (
    FixedPointFormat,
    bits_to_int,
    fixed_to_float,
    float_to_fixed,
    int_to_bits,
    twos_complement_decode,
    twos_complement_encode,
)


class TestFixedPointFormat:
    def test_width(self):
        fmt = FixedPointFormat(1, 8)
        assert fmt.width == 9

    def test_range_q1_8(self):
        fmt = FixedPointFormat(1, 8)
        assert fmt.min_value == -1
        assert fmt.max_value == Fraction(255, 256)

    def test_lsb(self):
        assert FixedPointFormat(1, 4).lsb == Fraction(1, 16)

    def test_rejects_zero_int_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 8)

    def test_rejects_negative_frac_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(1, -1)

    def test_representable(self):
        fmt = FixedPointFormat(1, 4)
        assert fmt.representable(Fraction(3, 16))
        assert not fmt.representable(Fraction(1, 32))
        assert not fmt.representable(Fraction(3, 2))

    def test_quantize_rounds(self):
        fmt = FixedPointFormat(1, 4)
        assert fmt.quantize(0.2) == Fraction(3, 16)

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(1, 4)
        assert fmt.quantize(5.0) == fmt.max_value
        assert fmt.quantize(-5.0) == fmt.min_value


class TestQuantizeTieBreaking:
    """Regression tests for the tie-breaking rule of ``quantize``.

    ``quantize`` historically used Python ``round`` — banker's rounding,
    ties to even — so ``1.5 * lsb`` and ``2.5 * lsb`` both collapsed to
    ``2 * lsb``: a bias no hardware "add half an LSB and truncate"
    quantizer exhibits.  The default is now round-half-away-from-zero,
    with the old rule available as ``mode="half-even"``.

    Call-site audit (the reason the default could change safely): the
    production tree has no ``FixedPointFormat.quantize`` callers — the
    DSP coefficient quantizers (``dsp/fir.py``, ``dsp/iir.py``,
    ``dsp/dct.py``) use their own ``round()``-based scaling whose pinned
    golden values are unaffected by this method.
    """

    def test_half_away_is_the_default(self):
        fmt = FixedPointFormat(1, 4)  # lsb = 1/16
        # exact tie points: k + 1/2 in lsb units
        assert fmt.quantize(1.5 / 16) == Fraction(2, 16)
        assert fmt.quantize(2.5 / 16) == Fraction(3, 16)  # round() gave 2/16
        assert fmt.quantize(0.5 / 16) == Fraction(1, 16)  # round() gave 0
        assert fmt.quantize(-0.5 / 16) == Fraction(-1, 16)
        assert fmt.quantize(-2.5 / 16) == Fraction(-3, 16)

    def test_half_even_reproduces_historical_behavior(self):
        fmt = FixedPointFormat(1, 4)
        assert fmt.quantize(2.5 / 16, mode="half-even") == Fraction(2, 16)
        assert fmt.quantize(1.5 / 16, mode="half-even") == Fraction(2, 16)
        assert fmt.quantize(0.5 / 16, mode="half-even") == Fraction(0)
        assert fmt.quantize(-2.5 / 16, mode="half-even") == Fraction(-2, 16)

    def test_non_ties_agree_across_modes(self):
        fmt = FixedPointFormat(1, 6)
        for value in (0.2, -0.37, 0.71, -0.99, 0.015625, 0.4999):
            assert fmt.quantize(value) == fmt.quantize(value, mode="half-even")

    def test_tie_at_saturation_boundary(self):
        fmt = FixedPointFormat(1, 4)
        # max_value + lsb/2 rounds away to 1, which saturates to max
        assert fmt.quantize(float(fmt.max_value + fmt.lsb / 2)) == fmt.max_value
        assert fmt.quantize(float(fmt.min_value - fmt.lsb / 2)) == fmt.min_value

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            FixedPointFormat(1, 4).quantize(0.2, mode="stochastic")


class TestCodec:
    def test_roundtrip_all_q1_4(self):
        fmt = FixedPointFormat(1, 4)
        for raw in range(32):
            value = fixed_to_float(raw, fmt)
            assert float_to_fixed(value, fmt) == raw

    def test_negative_encoding(self):
        fmt = FixedPointFormat(1, 4)
        assert float_to_fixed(Fraction(-1, 16), fmt) == 0b11111

    def test_unrepresentable_raises(self):
        fmt = FixedPointFormat(1, 2)
        with pytest.raises(ValueError):
            float_to_fixed(Fraction(1, 8), fmt)

    def test_out_of_range_raw(self):
        fmt = FixedPointFormat(1, 2)
        with pytest.raises(ValueError):
            fixed_to_float(8, fmt)


class TestBits:
    def test_int_to_bits_lsb_first(self):
        assert int_to_bits(0b1101, 4) == [1, 0, 1, 1]

    def test_bits_roundtrip(self):
        for value in range(64):
            assert bits_to_int(int_to_bits(value, 6)) == value

    def test_int_to_bits_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestTwosComplement:
    def test_roundtrip_full_range(self):
        for value in range(-8, 8):
            raw = twos_complement_encode(value, 4)
            assert twos_complement_decode(raw, 4) == value

    def test_negative_is_high_half(self):
        assert twos_complement_encode(-1, 4) == 0b1111

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            twos_complement_encode(8, 4)
        with pytest.raises(ValueError):
            twos_complement_encode(-9, 4)

    def test_decode_range_check(self):
        with pytest.raises(ValueError):
            twos_complement_decode(16, 4)
