"""Unit tests for the two's-complement fixed-point codec."""

from fractions import Fraction

import pytest

from repro.numrep.fixed_point import (
    FixedPointFormat,
    bits_to_int,
    fixed_to_float,
    float_to_fixed,
    int_to_bits,
    twos_complement_decode,
    twos_complement_encode,
)


class TestFixedPointFormat:
    def test_width(self):
        fmt = FixedPointFormat(1, 8)
        assert fmt.width == 9

    def test_range_q1_8(self):
        fmt = FixedPointFormat(1, 8)
        assert fmt.min_value == -1
        assert fmt.max_value == Fraction(255, 256)

    def test_lsb(self):
        assert FixedPointFormat(1, 4).lsb == Fraction(1, 16)

    def test_rejects_zero_int_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 8)

    def test_rejects_negative_frac_bits(self):
        with pytest.raises(ValueError):
            FixedPointFormat(1, -1)

    def test_representable(self):
        fmt = FixedPointFormat(1, 4)
        assert fmt.representable(Fraction(3, 16))
        assert not fmt.representable(Fraction(1, 32))
        assert not fmt.representable(Fraction(3, 2))

    def test_quantize_rounds(self):
        fmt = FixedPointFormat(1, 4)
        assert fmt.quantize(0.2) == Fraction(3, 16)

    def test_quantize_saturates(self):
        fmt = FixedPointFormat(1, 4)
        assert fmt.quantize(5.0) == fmt.max_value
        assert fmt.quantize(-5.0) == fmt.min_value


class TestCodec:
    def test_roundtrip_all_q1_4(self):
        fmt = FixedPointFormat(1, 4)
        for raw in range(32):
            value = fixed_to_float(raw, fmt)
            assert float_to_fixed(value, fmt) == raw

    def test_negative_encoding(self):
        fmt = FixedPointFormat(1, 4)
        assert float_to_fixed(Fraction(-1, 16), fmt) == 0b11111

    def test_unrepresentable_raises(self):
        fmt = FixedPointFormat(1, 2)
        with pytest.raises(ValueError):
            float_to_fixed(Fraction(1, 8), fmt)

    def test_out_of_range_raw(self):
        fmt = FixedPointFormat(1, 2)
        with pytest.raises(ValueError):
            fixed_to_float(8, fmt)


class TestBits:
    def test_int_to_bits_lsb_first(self):
        assert int_to_bits(0b1101, 4) == [1, 0, 1, 1]

    def test_bits_roundtrip(self):
        for value in range(64):
            assert bits_to_int(int_to_bits(value, 6)) == value

    def test_int_to_bits_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(16, 4)

    def test_bits_to_int_rejects_non_binary(self):
        with pytest.raises(ValueError):
            bits_to_int([0, 2, 1])


class TestTwosComplement:
    def test_roundtrip_full_range(self):
        for value in range(-8, 8):
            raw = twos_complement_encode(value, 4)
            assert twos_complement_decode(raw, 4) == value

    def test_negative_is_high_half(self):
        assert twos_complement_encode(-1, 4) == 0b1111

    def test_overflow_raises(self):
        with pytest.raises(ValueError):
            twos_complement_encode(8, 4)
        with pytest.raises(ValueError):
            twos_complement_encode(-9, 4)

    def test_decode_range_check(self):
        with pytest.raises(ValueError):
            twos_complement_decode(16, 4)
