"""Tests for the closed-loop IIR overclocking experiment."""

import numpy as np
import pytest

from repro.dsp.iir import IIRExperiment, iir_body
from repro.netlist.delay import UnitDelay


class TestBody:
    def test_stability_guard(self):
        with pytest.raises(ValueError):
            iir_body(0.9, 0.5)

    def test_quantized_coefficients(self):
        _dp, qa, qb = iir_body(0.5, 0.25)
        assert float(qa) == 0.5
        assert float(qb) == 0.25


class TestExperiment:
    @pytest.fixture(scope="class")
    def experiments(self):
        return {
            arith: IIRExperiment(0.5, 0.4375, arith, delay_model=UnitDelay())
            for arith in ("traditional", "online")
        }

    def test_reference_is_stable(self, experiments):
        exp = experiments["traditional"]
        xs = np.full(50, 0.5)
        ref = exp.reference(xs)
        # steady state: y = b*x / (1 - a)
        assert ref[-1] == pytest.approx(0.4375 * 0.5 / 0.5, abs=1e-3)

    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_safe_clock_tracks_reference(self, experiments, arith):
        exp = experiments[arith]
        rng = np.random.default_rng(2)
        xs = rng.uniform(-0.8, 0.8, 40)
        f0 = exp.measure_error_free_step()
        got = exp.run(xs, exp.rated_step)
        ref = exp.reference(xs)
        tol = 1e-9 if arith == "traditional" else 0.02
        assert np.abs(got - ref).max() <= tol
        assert f0 <= exp.rated_step

    def test_feedback_amplifies_the_contrast(self, experiments):
        """Overclocked by 15%, the conventional loop diverges while the
        online loop stays at truncation-noise level."""
        rng = np.random.default_rng(3)
        xs = rng.uniform(-0.8, 0.8, 50)
        errors = {}
        for arith, exp in experiments.items():
            f0 = exp.measure_error_free_step()
            over = exp.run(xs, int(f0 / 1.15))
            errors[arith] = float(np.abs(over - exp.reference(xs)).mean())
        assert errors["online"] < errors["traditional"] / 3

    def test_state_stays_bounded(self, experiments):
        exp = experiments["online"]
        xs = np.full(30, 0.9)
        out = exp.run(xs, max(1, exp.rated_step // 2))
        assert np.all(np.isfinite(out))
