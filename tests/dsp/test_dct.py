"""Tests for the 8-point DCT-II datapath."""

import math

import numpy as np
import pytest

from repro.dsp.dct import DCT8_COEFFICIENTS, dct8_datapath, dct8_reference
from repro.netlist.delay import UnitDelay


def _quantize(values, n=8):
    return np.round(np.asarray(values) * 2**n) / 2**n


class TestBasis:
    def test_rows_bounded(self):
        """Row L1 norms stay below 1 after the 1/4 scaling."""
        for row in DCT8_COEFFICIENTS:
            assert sum(abs(c) for c in row) < 1.0

    def test_orthogonality(self):
        m = np.array(DCT8_COEFFICIENTS) / 0.25
        gram = m @ m.T
        assert np.allclose(gram, np.eye(8), atol=1e-12)

    def test_dc_row_constant(self):
        row = DCT8_COEFFICIENTS[0]
        assert all(c == pytest.approx(row[0]) for c in row)


class TestDatapath:
    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_matches_reference(self, arith):
        dp, basis = dct8_datapath(ndigits=8)
        synth = dp.synthesize(arith, UnitDelay())
        rng = np.random.default_rng(2)
        samples = _quantize(rng.uniform(-0.9, 0.9, size=(8, 60)))
        run = synth.apply({f"x{n}": samples[n] for n in range(8)})
        ref = dct8_reference(basis, samples)
        tol = 1e-12 if arith == "traditional" else 8 * 2**-8
        for i in range(8):
            assert np.abs(run.correct[f"X{i}"] - ref[i]).max() <= tol

    def test_constant_input_concentrates_in_dc(self):
        dp, basis = dct8_datapath(ndigits=8)
        synth = dp.synthesize("traditional", UnitDelay())
        run = synth.apply({f"x{n}": np.array([0.5]) for n in range(8)})
        dc = float(run.correct["X0"][0])
        assert dc == pytest.approx(0.5 * math.sqrt(8) * 0.25, abs=1e-2)
        for i in range(1, 8):
            assert abs(float(run.correct[f"X{i}"][0])) < 0.02

    def test_overclocked_energy_stays_low_frequency(self):
        """Overclocking the online DCT perturbs coefficients only slightly
        (LSD errors), so the spectral shape survives."""
        dp, basis = dct8_datapath(ndigits=8)
        synth = dp.synthesize("online", UnitDelay())
        rng = np.random.default_rng(3)
        samples = _quantize(rng.uniform(-0.9, 0.9, size=(8, 200)))
        run = synth.apply({f"x{n}": samples[n] for n in range(8)})
        over = run.decode(max(1, int(run.error_free_step * 0.95)))
        for i in range(8):
            err = np.abs(over[f"X{i}"] - run.correct[f"X{i}"]).mean()
            assert err < 0.05  # well below the coefficient scale (0.25)
