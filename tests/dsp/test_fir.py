"""Tests for the FIR datapath generator."""

from fractions import Fraction

import numpy as np
import pytest

from repro.dsp.fir import (
    fir_datapath,
    fir_reference,
    lowpass_coefficients,
    quantize_coefficients,
)
from repro.netlist.delay import UnitDelay


def _quantize(values, n=8):
    return np.round(np.asarray(values) * 2**n) / 2**n


class TestLowpass:
    def test_unit_dc_gain(self):
        taps = lowpass_coefficients(15)
        assert sum(taps) == pytest.approx(1.0)

    def test_symmetric(self):
        taps = lowpass_coefficients(11)
        assert np.allclose(taps, taps[::-1])

    def test_validation(self):
        with pytest.raises(ValueError):
            lowpass_coefficients(0)
        with pytest.raises(ValueError):
            lowpass_coefficients(5, cutoff=0.7)


class TestQuantize:
    def test_safe_l1_norm(self):
        quantized, _ = quantize_coefficients([0.9, -0.8, 0.7], 8)
        assert sum(abs(q) for q in quantized) <= 1 - Fraction(1, 256)

    def test_exact_multiples(self):
        quantized, scale = quantize_coefficients([0.25, 0.125], 8)
        assert scale == 1.0
        assert quantized == [Fraction(1, 4), Fraction(1, 8)]


class TestFirDatapath:
    @pytest.mark.parametrize("arith", ["traditional", "online"])
    def test_matches_reference(self, arith):
        taps = lowpass_coefficients(7)
        dp, quantized, _scale = fir_datapath(taps, ndigits=8)
        synth = dp.synthesize(arith, UnitDelay())
        rng = np.random.default_rng(0)
        samples = _quantize(rng.uniform(-0.9, 0.9, size=(7, 150)))
        run = synth.apply({f"x{k}": samples[k] for k in range(7)})
        ref = fir_reference(quantized, samples)
        tol = 1e-12 if arith == "traditional" else 7 * 2**-8
        assert np.abs(run.correct["y"] - ref).max() <= tol

    def test_zero_coefficients_skipped(self):
        dp, quantized, _ = fir_datapath([0.5, 0.0, 0.25], ndigits=8)
        assert quantized[1] == 0
        synth = dp.synthesize("traditional", UnitDelay())
        run = synth.apply(
            {"x0": np.array([0.5]), "x1": np.array([0.9]), "x2": np.array([0.5])}
        )
        assert run.correct["y"][0] == pytest.approx(0.5 * 0.5 + 0.25 * 0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fir_datapath([])

    def test_overclocking_comparison(self):
        """The online FIR degrades far more gently than the traditional
        one — the paper's claim on a different workload."""
        taps = lowpass_coefficients(5)
        dp, _q, _s = fir_datapath(taps, ndigits=8)
        rng = np.random.default_rng(1)
        inputs = {
            f"x{k}": rng.uniform(-0.9, 0.9, 400) for k in range(5)
        }
        errors = {}
        for arith in ("traditional", "online"):
            synth = dp.synthesize(arith, UnitDelay())
            run = synth.apply(inputs)
            errors[arith] = run.mean_abs_error(
                max(1, int(run.error_free_step * 0.93))
            )
        assert errors["online"] < errors["traditional"]
