"""Bit-exactness of the digit-level behavioral engine (`repro.vec`).

The engine claims *bit-identical* agreement with the gate-level wave
recurrence at every tick — overclocked capture boundaries included.
These tests pin that claim against both bit-level engines across
geometries, tick budgets, chunk boundaries, and the adder kernel.
"""

import numpy as np
import pytest

from repro.core.kernels import bs_add
from repro.core.online_multiplier import OnlineMultiplier
from repro.core.ops import NumpyOps
from repro.sim.montecarlo import uniform_digit_batch
from repro.vec import om_wave_vector, vector_online_add
from repro.vec import engine as vec_engine


def _batch(ndigits, num_samples, seed=2014):
    rng = np.random.default_rng(seed)
    return (
        uniform_digit_batch(ndigits, num_samples, rng),
        uniform_digit_batch(ndigits, num_samples, rng),
    )


class TestMultiplierWave:
    @pytest.mark.parametrize("ndigits", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize("delta", [3, 4])
    def test_matches_wave_engine_every_tick(self, ndigits, delta):
        om = OnlineMultiplier(ndigits, delta=delta)
        xd, yd = _batch(ndigits, 257, seed=ndigits * 10 + delta)
        ref = om.wave(xd, yd, backend="wave")
        res = om_wave_vector(ndigits, delta, xd, yd)
        np.testing.assert_array_equal(res, ref)

    @pytest.mark.parametrize("ndigits", [2, 8])
    def test_matches_packed_engine_every_tick(self, ndigits):
        om = OnlineMultiplier(ndigits)
        xd, yd = _batch(ndigits, 300, seed=7)
        ref = om.wave(xd, yd, backend="packed")
        res = om_wave_vector(ndigits, om.delta, xd, yd)
        np.testing.assert_array_equal(res, ref)

    @pytest.mark.parametrize("max_ticks", [1, 2, 4, 20])
    def test_max_ticks_truncation(self, max_ticks):
        om = OnlineMultiplier(6)
        xd, yd = _batch(6, 64, seed=3)
        ref = om.wave(xd, yd, max_ticks=max_ticks, backend="wave")
        res = om_wave_vector(6, om.delta, xd, yd, max_ticks=max_ticks)
        assert res.shape == (max_ticks + 1, 6, 64)
        np.testing.assert_array_equal(res, ref)

    def test_tick_zero_is_reset_state(self):
        xd, yd = _batch(4, 16)
        res = om_wave_vector(4, 3, xd, yd)
        assert not res[0].any()

    def test_chunk_boundaries_are_invisible(self, monkeypatch):
        # Sample blocking is a pure cache optimization: shrinking the
        # chunk so one batch spans several partial blocks must not
        # change a single digit.
        xd, yd = _batch(5, 23, seed=11)
        whole = om_wave_vector(5, 3, xd, yd)
        monkeypatch.setattr(vec_engine, "_CHUNK", 7)
        chunked = om_wave_vector(5, 3, xd, yd)
        np.testing.assert_array_equal(chunked, whole)

    def test_dispatch_through_om_wave(self):
        om = OnlineMultiplier(8)
        xd, yd = _batch(8, 200, seed=5)
        via_backend = om.wave(xd, yd, backend="vector")
        direct = om_wave_vector(8, om.delta, xd, yd)
        np.testing.assert_array_equal(via_backend, direct)
        assert via_backend.dtype == np.int8

    def test_rejects_bad_geometry(self):
        xd, yd = _batch(4, 8)
        with pytest.raises(ValueError):
            om_wave_vector(0, 3, xd[:0], yd[:0])
        with pytest.raises(ValueError):
            om_wave_vector(4, 2, xd, yd)
        with pytest.raises(ValueError):
            om_wave_vector(5, 3, xd, yd)  # shape mismatch with ndigits
        with pytest.raises(ValueError):
            om_wave_vector(4, 3, xd, yd[:, :4])


class TestOnlineAdder:
    @pytest.mark.parametrize("ndigits", [1, 2, 4, 8])
    def test_matches_bs_add(self, ndigits):
        xd, yd = _batch(ndigits, 129, seed=ndigits)
        res = vector_online_add(xd, yd)
        assert res.shape == (ndigits + 1, xd.shape[1])

        ops = NumpyOps()

        def planes(digits):
            return {
                k + 1: (
                    (digits[k] == 1).astype(np.uint8),
                    (digits[k] == -1).astype(np.uint8),
                )
                for k in range(ndigits)
            }

        ref = bs_add(ops, planes(xd), planes(yd))
        for pos in range(ndigits + 1):
            p, nn = ref.get(pos, (0, 0))
            # NumpyOps folds structurally-constant bits to plain ints
            value = np.asarray(p, np.int8) - np.asarray(nn, np.int8)
            np.testing.assert_array_equal(
                res[pos], np.broadcast_to(value, res[pos].shape)
            )

    def test_rejects_shape_mismatch(self):
        xd, yd = _batch(4, 8)
        with pytest.raises(ValueError):
            vector_online_add(xd, yd[:3])
        with pytest.raises(ValueError):
            vector_online_add(xd[:, 0], yd[:, 0])
