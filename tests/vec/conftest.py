"""Shared cross-engine conformance tolerances for the ``tests/vec`` suites.

The vector-engine acceptance gate distinguishes two kinds of agreement:

* **Exact**: same seed, same operand stream — engines must be
  bit-identical, no tolerance at all (use
  ``numpy.testing.assert_array_equal``).
* **Statistical**: independent seeds — Monte-Carlo statistics must agree
  within sampling noise.  The constants below are the suite-wide
  thresholds, set at roughly 3x the empirically observed spread at 5000
  samples (binomial std at ``p ~ 0.5`` is ~0.007); both the original
  vector-vs-packed suite (``test_conformance.py``) and the fused-sweep
  suite (``test_fused_conformance.py``) import them instead of
  re-hardcoding literals.
"""

import numpy as np

#: max |difference| of per-depth violation probabilities across seeds
VIOLATION_TOL = 0.03

#: max |difference| of per-depth mean |error| (``E|eps|``) across seeds
MAE_TOL = 0.02

#: max total-variation distance between normalized per-depth
#: first-erroneous-digit histograms across seeds
TV_TOL = 0.06


def assert_sweep_statistics_close(a, b):
    """Cross-seed statistical agreement of two sweep-like results.

    *a* and *b* expose per-step ``violation_probability`` and
    ``mean_abs_error`` arrays on a common step grid (a
    :class:`~repro.sim.sweep.SweepResult` or
    :class:`~repro.sim.montecarlo.MonteCarloResult`).
    """
    assert (
        np.max(np.abs(a.violation_probability - b.violation_probability))
        < VIOLATION_TOL
    )
    assert np.max(np.abs(a.mean_abs_error - b.mean_abs_error)) < MAE_TOL


def assert_histograms_close(counts_a, counts_b, num_samples):
    """Per-depth total-variation agreement of two count histograms."""
    p = np.asarray(counts_a, dtype=np.float64) / num_samples
    q = np.asarray(counts_b, dtype=np.float64) / num_samples
    tv = 0.5 * np.abs(p - q).sum(axis=1)
    assert np.max(tv) < TV_TOL
