"""Cross-engine conformance: ``backend="vector"`` vs the packed engine.

Two claims are pinned here, matching the acceptance criteria of the
vector engine:

* **Exact agreement on violation-free periods** (and in fact at every
  tick): with the same ``RunConfig`` seed, the vector and packed engines
  produce bit-identical digit waves, hence identical Monte-Carlo
  statistics at every depth — including the deep, violation-free periods
  where any deviation would be a correctness bug rather than noise.
* **Statistical agreement on overclocked periods** across *different*
  seeds: violation rates, ``E|eps|`` (the Monte-Carlo MRE analog), and
  first-erroneous-digit histograms drawn from independent sample streams
  must agree within sampling noise.  The tolerances are the suite-wide
  constants of ``tests/vec/conftest.py`` (``VIOLATION_TOL``,
  ``MAE_TOL``, ``TV_TOL``), shared with the fused-sweep suite.

Determinism (``jobs=1 == jobs=N``) and result-cache round-trips under
``backend="vector"`` ride along, since both are part of the backend
contract RunConfig promises.
"""

import numpy as np
import pytest

from repro.core.online_multiplier import OnlineMultiplier
from repro.obs.probe import run_stage_probe
from repro.runners import RunConfig
from repro.sim.montecarlo import run_montecarlo, uniform_digit_batch

from tests.vec.conftest import (
    assert_histograms_close,
    assert_sweep_statistics_close,
)

NDIGITS = 8
SAMPLES = 5000


def _config(backend, seed=2014, **kw):
    return RunConfig(
        ndigits=NDIGITS, backend=backend, seed=seed, cache_dir=None, **kw
    )


class TestExactAgreement:
    def test_montecarlo_identical_with_same_seed(self):
        ref = run_montecarlo(_config("packed"), SAMPLES)
        res = run_montecarlo(_config("vector"), SAMPLES)
        np.testing.assert_array_equal(res.depths, ref.depths)
        np.testing.assert_array_equal(res.mean_abs_error, ref.mean_abs_error)
        np.testing.assert_array_equal(
            res.violation_probability, ref.violation_probability
        )

    def test_violation_free_periods_bit_exact(self):
        # Depths at which the packed engine reports zero violations must
        # carry *digit-identical* waves on the vector engine — and both
        # must equal the fully settled product there.
        om = OnlineMultiplier(NDIGITS)
        rng = np.random.default_rng(42)
        xd = uniform_digit_batch(NDIGITS, 512, rng)
        yd = uniform_digit_batch(NDIGITS, 512, rng)
        ref = om.wave(xd, yd, backend="packed")
        res = om.wave(xd, yd, backend="vector")
        np.testing.assert_array_equal(res, ref)
        settled = ref[-1]
        for b in range(ref.shape[0]):
            if np.array_equal(ref[b], settled):
                np.testing.assert_array_equal(res[b], settled)

    def test_settled_product_value_bound(self):
        # Ground truth, independent of any engine: the settled wave value
        # satisfies the paper's residual bound |x*y - z| < 2**-(N-1).
        om = OnlineMultiplier(NDIGITS)
        rng = np.random.default_rng(11)
        xd = uniform_digit_batch(NDIGITS, 256, rng)
        yd = uniform_digit_batch(NDIGITS, 256, rng)
        final = om.wave(xd, yd, backend="vector")[-1]
        weights = 2.0 ** -(np.arange(1, NDIGITS + 1))
        xval = weights @ xd
        yval = weights @ yd
        zval = weights @ final
        assert np.max(np.abs(xval * yval - zval)) < 2.0 ** -(NDIGITS - 1)


class TestStatisticalAgreement:
    def test_overclocked_statistics_across_seeds(self):
        a = run_montecarlo(_config("vector", seed=2014), SAMPLES)
        b = run_montecarlo(_config("packed", seed=99), SAMPLES)
        assert_sweep_statistics_close(a, b)

    def test_first_error_histograms(self):
        same = run_stage_probe(_config("vector"), SAMPLES)
        ref = run_stage_probe(_config("packed"), SAMPLES)
        # same seed: bit-identical telemetry
        np.testing.assert_array_equal(
            same.first_error_counts, ref.first_error_counts
        )
        np.testing.assert_array_equal(
            same.value_violations, ref.value_violations
        )
        np.testing.assert_array_equal(
            same.chain_depth_counts, ref.chain_depth_counts
        )
        # independent seed: distributions agree within sampling noise
        other = run_stage_probe(_config("packed", seed=99), SAMPLES)
        assert_histograms_close(
            same.first_error_counts, other.first_error_counts, SAMPLES
        )


class TestRunnerContract:
    def test_jobs_determinism(self):
        serial = run_montecarlo(_config("vector", jobs=1), SAMPLES)
        pooled = run_montecarlo(_config("vector", jobs=3), SAMPLES)
        np.testing.assert_array_equal(
            serial.mean_abs_error, pooled.mean_abs_error
        )
        np.testing.assert_array_equal(
            serial.violation_probability, pooled.violation_probability
        )

    def test_cache_roundtrip_and_key_separation(self, tmp_path):
        cfg = RunConfig(
            ndigits=6, backend="vector", cache_dir=str(tmp_path)
        )
        first = run_montecarlo(cfg, 2000)
        second = run_montecarlo(cfg, 2000)
        assert first.run_stats.cache == "miss"
        assert second.run_stats.cache == "hit"
        np.testing.assert_array_equal(
            first.mean_abs_error, second.mean_abs_error
        )
        # packed must not be served the vector entry (nor vice versa) —
        # the backend is part of the cache key even though results match
        packed = run_montecarlo(
            RunConfig(ndigits=6, backend="packed", cache_dir=str(tmp_path)),
            2000,
        )
        assert packed.run_stats.cache == "miss"
        np.testing.assert_array_equal(
            packed.mean_abs_error, first.mean_abs_error
        )
