"""Fused-vs-unfused conformance: the one-pass sweep kernel is exact.

The fused sweep (:mod:`repro.vec.fused`) claims to change the *cost* of
a multi-period sweep — one stage-by-stage pass emitting snapshots for
every requested chain-cut depth — without changing a single digit of
it.  That claim is pinned here at three levels:

* **Kernel**: :func:`om_sweep_vector` rows are bit-identical to the
  corresponding ticks of the unfused vector wave *and* of the packed
  gate engine, for every depth in the grid, including duplicates,
  unsorted grids, depth 0 and beyond-settle clamping.  Hypothesis
  drives the geometry ``(n, delta, period grid, seed)``.
* **Statistics**: :func:`fused_sweep_partial` equals the per-period
  oracle :func:`stage_sweep_partial` (one truncated wave per depth)
  float-for-float — both under the vector engine and under the packed
  engine, so the gate-level reference transitively covers the fused
  path.
* **Harness**: ``run_sweep(timing="stage")`` produces bit-identical
  :class:`SweepResult` arrays under ``backend="vector"`` (fused) and
  ``backend="packed"`` (per-period oracle), is ``jobs``-independent,
  round-trips through the result cache under keys separated from the
  gate-level sweep, from other backends and from other period grids,
  and emits the ``vec.fused_sweep`` span / ``vec.fused_periods``
  metric.

Cross-seed statistical agreement reuses the suite-wide tolerances of
``tests/vec/conftest.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.online_multiplier import OnlineMultiplier
from repro.obs.metrics import metrics
from repro.obs.trace import Tracer, use_tracer
from repro.runners import RunConfig
from repro.sim.montecarlo import uniform_digit_batch
from repro.sim.sweep import (
    run_sweep,
    stage_steps_for_periods,
    stage_sweep_partial,
)
from repro.vec.fused import fused_sweep_partial, om_sweep_vector

from tests.vec.conftest import assert_sweep_statistics_close

NDIGITS = 8
S_TOT = NDIGITS + 3
#: the benchmark workload's period grid: 25 normalized periods
PERIODS_25 = tuple(i / 25 for i in range(1, 26))


def _batch(ndigits, samples, seed):
    rng = np.random.default_rng(seed)
    return (
        uniform_digit_batch(ndigits, samples, rng),
        uniform_digit_batch(ndigits, samples, rng),
    )


def _config(backend, seed=2014, **kw):
    return RunConfig(
        ndigits=NDIGITS, backend=backend, seed=seed, cache_dir=None, **kw
    )


class TestKernelBitIdentity:
    def test_every_depth_matches_unfused_vector_and_packed(self):
        xd, yd = _batch(NDIGITS, 900, seed=7)
        om = OnlineMultiplier(NDIGITS)
        vector = om.wave(xd, yd, backend="vector")
        packed = om.wave(xd, yd, backend="packed")
        depths = list(range(S_TOT + 1))
        snaps = om_sweep_vector(NDIGITS, 3, xd, yd, depths)
        for i, b in enumerate(depths):
            np.testing.assert_array_equal(snaps[i], vector[b])
            np.testing.assert_array_equal(snaps[i], packed[b])

    def test_duplicates_and_order_are_honored(self):
        xd, yd = _batch(NDIGITS, 300, seed=11)
        full = om_sweep_vector(NDIGITS, 3, xd, yd, range(S_TOT + 1))
        depths = [9, 2, 2, 0, S_TOT, 5, 9]
        snaps = om_sweep_vector(NDIGITS, 3, xd, yd, depths)
        assert snaps.shape[0] == len(depths)
        for i, b in enumerate(depths):
            np.testing.assert_array_equal(snaps[i], full[b])

    def test_beyond_settle_clamps_to_settled_product(self):
        xd, yd = _batch(NDIGITS, 200, seed=13)
        settled = OnlineMultiplier(NDIGITS).wave(xd, yd, backend="vector")[-1]
        snaps = om_sweep_vector(NDIGITS, 3, xd, yd, [S_TOT, S_TOT + 1, 99])
        for row in snaps:
            np.testing.assert_array_equal(row, settled)

    def test_depth_zero_is_reset_state(self):
        xd, yd = _batch(NDIGITS, 64, seed=17)
        snaps = om_sweep_vector(NDIGITS, 3, xd, yd, [0])
        assert not snaps.any()

    def test_invalid_grids_rejected(self):
        xd, yd = _batch(NDIGITS, 8, seed=19)
        with pytest.raises(ValueError):
            om_sweep_vector(NDIGITS, 3, xd, yd, [])
        with pytest.raises(ValueError):
            om_sweep_vector(NDIGITS, 3, xd, yd, [3, -1])

    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(1, 7),
        delta=st.integers(3, 5),
        periods=st.lists(
            st.floats(0.01, 1.3, allow_nan=False), min_size=1, max_size=12
        ),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_fused_equals_unfused(self, n, delta, periods, seed):
        """For any geometry, grid and operand stream, fusion is exact."""
        xd, yd = _batch(n, 48, seed)
        depths = stage_steps_for_periods(periods, n + delta)
        om = OnlineMultiplier(n, delta)
        full = om.wave(xd, yd, backend="vector")
        snaps = om_sweep_vector(n, delta, xd, yd, depths)
        for i, b in enumerate(depths):
            np.testing.assert_array_equal(snaps[i], full[b])

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(1, 5),
        delta=st.integers(3, 4),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_fused_matches_packed_gate_engine(self, n, delta, seed):
        xd, yd = _batch(n, 40, seed)
        om = OnlineMultiplier(n, delta)
        packed = om.wave(xd, yd, backend="packed")
        snaps = om_sweep_vector(n, delta, xd, yd, range(n + delta + 1))
        np.testing.assert_array_equal(snaps, packed)


class TestPartialEquivalence:
    def test_fused_partial_equals_vector_oracle(self):
        """Same floats, not merely close: fused vs one-wave-per-period."""
        xd, yd = _batch(NDIGITS, 1200, seed=23)
        grid = sorted(set(stage_steps_for_periods(PERIODS_25, S_TOT)))
        fused = fused_sweep_partial(NDIGITS, 3, xd, yd, grid)
        oracle = stage_sweep_partial(
            NDIGITS, 3, xd, yd, grid, backend="vector"
        )
        assert fused["settle_step"] == oracle["settle_step"]
        assert fused["rated_step"] == oracle["rated_step"]
        assert fused["num_samples"] == oracle["num_samples"]
        np.testing.assert_array_equal(fused["sum_err"], oracle["sum_err"])
        np.testing.assert_array_equal(fused["viol"], oracle["viol"])

    def test_fused_partial_equals_packed_oracle(self):
        xd, yd = _batch(NDIGITS, 800, seed=29)
        grid = sorted(set(stage_steps_for_periods(PERIODS_25, S_TOT)))
        fused = fused_sweep_partial(NDIGITS, 3, xd, yd, grid)
        oracle = stage_sweep_partial(
            NDIGITS, 3, xd, yd, grid, backend="packed"
        )
        np.testing.assert_array_equal(fused["sum_err"], oracle["sum_err"])
        np.testing.assert_array_equal(fused["viol"], oracle["viol"])


class TestHarnessConformance:
    def test_vector_equals_packed_bit_identical(self):
        fused = run_sweep(
            _config("vector"),
            num_samples=3000,
            timing="stage",
            periods=PERIODS_25,
        )
        oracle = run_sweep(
            _config("packed"),
            num_samples=3000,
            timing="stage",
            periods=PERIODS_25,
        )
        np.testing.assert_array_equal(fused.steps, oracle.steps)
        np.testing.assert_array_equal(
            fused.mean_abs_error, oracle.mean_abs_error
        )
        np.testing.assert_array_equal(
            fused.violation_probability, oracle.violation_probability
        )
        assert fused.error_free_step == oracle.error_free_step
        assert fused.settle_step == oracle.settle_step == S_TOT

    def test_cross_seed_statistics(self):
        a = run_sweep(
            _config("vector", seed=2014), num_samples=5000, timing="stage"
        )
        b = run_sweep(
            _config("packed", seed=99), num_samples=5000, timing="stage"
        )
        assert_sweep_statistics_close(a, b)

    def test_jobs_determinism(self):
        serial = run_sweep(
            _config("vector", jobs=1),
            num_samples=2500,
            timing="stage",
            periods=PERIODS_25,
        )
        pooled = run_sweep(
            _config("vector", jobs=3),
            num_samples=2500,
            timing="stage",
            periods=PERIODS_25,
        )
        np.testing.assert_array_equal(
            serial.mean_abs_error, pooled.mean_abs_error
        )
        np.testing.assert_array_equal(
            serial.violation_probability, pooled.violation_probability
        )

    def test_cache_roundtrip_and_key_separation(self, tmp_path):
        cfg = RunConfig(ndigits=5, backend="vector", cache_dir=str(tmp_path))
        first = run_sweep(cfg, num_samples=600, timing="stage")
        again = run_sweep(cfg, num_samples=600, timing="stage")
        assert first.run_stats.cache == "miss"
        assert again.run_stats.cache == "hit"
        np.testing.assert_array_equal(
            first.mean_abs_error, again.mean_abs_error
        )
        # a different period grid is a different experiment
        sparse = run_sweep(
            cfg, num_samples=600, timing="stage", periods=(0.5, 1.0)
        )
        assert sparse.run_stats.cache == "miss"
        assert len(sparse.steps) == 2
        # the packed oracle must not be served the fused entry
        packed = run_sweep(
            RunConfig(ndigits=5, backend="packed", cache_dir=str(tmp_path)),
            num_samples=600,
            timing="stage",
        )
        assert packed.run_stats.cache == "miss"
        np.testing.assert_array_equal(
            packed.mean_abs_error, first.mean_abs_error
        )
        # and the gate-level sweep is keyed apart from the stage sweep
        gate = run_sweep(
            RunConfig(ndigits=5, backend="packed", cache_dir=str(tmp_path)),
            num_samples=200,
        )
        assert gate.run_stats.cache == "miss"

    def test_stage_sweep_argument_validation(self):
        with pytest.raises(ValueError):
            run_sweep(
                _config("vector"), design="traditional", timing="stage"
            )
        with pytest.raises(ValueError):
            run_sweep(
                _config("vector"),
                timing="stage",
                periods=(0.5,),
                steps=(3,),
            )
        with pytest.raises(ValueError):
            run_sweep(_config("vector"), timing="stage", periods=())
        with pytest.raises(ValueError):
            run_sweep(_config("vector"), periods=(0.5,))  # gate timing
        with pytest.raises(ValueError):
            run_sweep(_config("vector"), timing="flux-capacitor")

    def test_fused_span_and_metric_emitted(self, tmp_path):
        sink = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=str(sink), enabled=True)
        with use_tracer(tracer):
            run_sweep(
                _config("vector"),
                num_samples=500,
                timing="stage",
                periods=PERIODS_25,
            )
            snapshot = metrics().snapshot()
        tracer.flush()
        assert "vec.fused_sweep" in sink.read_text()
        assert snapshot["counters"].get("vec.fused_periods", 0) >= len(
            PERIODS_25
        )
